package obs

import (
	"context"
	"encoding/json"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpans bounds the per-trace span buffer. Requests deeper than this keep
// working; extra spans are counted in Dropped instead of recorded. 64 covers
// the deepest real path in the stack (HTTP → catalog → authz → cache →
// store → cloudsim) with a wide margin for fan-out.
const maxSpans = 64

// Propagation header names. A node forwarding a request (the fleet router,
// the HTTP client) carries its SpanContext in these headers; the receiving
// node adopts the trace ID, parents its spans under the forwarder's span,
// and honors the origin's sampling decision so both segments are retained
// (or both recycled) together.
const (
	// TraceIDHeader carries the 16-hex trace ID. The server also stamps it
	// on every response, so the same header name serves both directions.
	TraceIDHeader = "X-UC-Trace-Id"
	// ParentSpanHeader carries the forwarder's span index within the trace;
	// the remote segment grafts under it when /debug/traces stitches.
	ParentSpanHeader = "X-UC-Parent-Span"
	// SampledHeader is "1" when the origin decided to retain this trace.
	SampledHeader = "X-UC-Trace-Sampled"
)

// PropagationContext is the wire form of a SpanContext: everything a remote
// node needs to continue the trace.
type PropagationContext struct {
	TraceID string
	Parent  int32
	Sampled bool
}

// maxWireTraceID bounds accepted remote trace IDs so a hostile client
// cannot bloat retained summaries through the propagation headers.
const maxWireTraceID = 64

// hex16 formats v as 16 lowercase hex chars. Hand-rolled because trace-ID
// materialization sits on the audited hot path: one string allocation, no
// fmt machinery.
func hex16(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// ParsePropagation assembles a PropagationContext from header values; ok is
// false when no trace is being propagated (empty or oversized ID).
func ParsePropagation(traceID, parent, sampled string) (PropagationContext, bool) {
	if traceID == "" || len(traceID) > maxWireTraceID {
		return PropagationContext{}, false
	}
	pc := PropagationContext{TraceID: traceID, Parent: -1, Sampled: sampled == "1"}
	if n, err := strconv.Atoi(parent); err == nil && n >= 0 && n < maxSpans {
		pc.Parent = int32(n)
	}
	return pc, true
}

// spanRec is one recorded span. Offsets are monotonic nanoseconds since the
// trace began, so span math never touches the wall clock after Start.
type spanRec struct {
	name    string
	detail  string
	parent  int32 // index of parent span, -1 for root children
	startNs int64
	endNs   int64 // 0 while open
}

// Trace is one request's span collection. It is created by a Tracer, carried
// through the stack as a SpanContext, and either retained (sampled or slow)
// or recycled at Finish. All methods are safe for concurrent use by the
// goroutines of one request.
type Trace struct {
	tracer *Tracer
	begun  time.Time

	// Lazy ID: a random 64-bit prefix fixed at Tracer construction plus a
	// per-trace sequence number, formatted only when something actually
	// needs the string (response header, audit record, retention). Remote
	// traces adopt the origin's ID verbatim instead.
	seq    uint64
	id     atomic.Pointer[string]
	n      atomic.Int32 // spans used (may exceed maxSpans; clamp on read)
	spans  [maxSpans]spanRec
	capped atomic.Int64 // spans dropped past maxSpans

	// sampled is the retention decision, fixed at StartTrace (or adopted
	// from the wire) so it can propagate to downstream nodes before Finish.
	sampled bool
	// remote marks a trace segment continuing another node's trace;
	// remoteParent is the forwarder's span index (-1 = root).
	remote       bool
	remoteParent int32
}

// ID formats and caches the trace ID (16 hex chars, stable per trace;
// remote traces return the adopted origin ID).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	if p := t.id.Load(); p != nil {
		return *p
	}
	s := hex16(t.tracer.idPrefix ^ t.seq)
	t.id.CompareAndSwap(nil, &s)
	return *t.id.Load()
}

// Sampled reports the trace's retention decision (fixed at start).
func (t *Trace) Sampled() bool { return t != nil && t.sampled }

// start reserves a span slot and returns its index, or -1 if the buffer is
// full. One atomic add, no locks.
func (t *Trace) start(name, detail string, parent int32) int32 {
	i := t.n.Add(1) - 1
	if i >= maxSpans {
		t.capped.Add(1)
		return -1
	}
	t.spans[i] = spanRec{name: name, detail: detail, parent: parent, startNs: int64(time.Since(t.begun))}
	return i
}

func (t *Trace) end(i int32) {
	if i >= 0 && i < maxSpans {
		t.spans[i].endNs = int64(time.Since(t.begun))
	}
}

// SpanContext is the value threaded through the stack: which trace (if any)
// and which span is the current parent. The zero value is a no-op — every
// instrumentation site works unconditionally, costing one nil check when
// tracing is off.
type SpanContext struct {
	tr     *Trace
	parent int32
}

// Active reports whether a trace is attached.
func (sc SpanContext) Active() bool { return sc.tr != nil }

// TraceID returns the trace's ID, or "" when no trace is attached.
func (sc SpanContext) TraceID() string { return sc.tr.ID() }

// Sampled reports whether the attached trace will be retained.
func (sc SpanContext) Sampled() bool { return sc.tr.Sampled() }

// Propagation returns the wire form of sc for forwarding to another node;
// ok is false when no trace is attached (nothing to propagate).
func (sc SpanContext) Propagation() (PropagationContext, bool) {
	if sc.tr == nil {
		return PropagationContext{}, false
	}
	return PropagationContext{TraceID: sc.tr.ID(), Parent: sc.parent, Sampled: sc.tr.sampled}, true
}

// Span is an open span handle; call End when the operation completes.
type Span struct {
	tr *Trace
	i  int32
}

// Start opens a child span. The returned SpanContext parents subsequent
// spans under the new one; the Span must be End()ed.
func (sc SpanContext) Start(name string) (SpanContext, Span) {
	return sc.StartDetail(name, "")
}

// StartDetail opens a child span with a free-form detail (a table name, a
// batch size). detail must already be a string — build it only when
// sc.Active() to keep the disabled path allocation-free.
func (sc SpanContext) StartDetail(name, detail string) (SpanContext, Span) {
	if sc.tr == nil {
		return sc, Span{}
	}
	i := sc.tr.start(name, detail, sc.parent)
	if i < 0 {
		return sc, Span{}
	}
	return SpanContext{tr: sc.tr, parent: i}, Span{tr: sc.tr, i: i}
}

// End closes the span. Safe on the zero Span.
func (s Span) End() {
	if s.tr != nil {
		s.tr.end(s.i)
	}
}

// SetDetail replaces the span's detail after the fact (e.g. a batch size
// known only at completion). Safe on the zero Span.
func (s Span) SetDetail(detail string) {
	if s.tr != nil && s.i >= 0 && s.i < maxSpans {
		s.tr.spans[s.i].detail = detail
	}
}

// Tracer creates, samples, and retains traces. Retention policy: a trace is
// kept if it was probabilistically selected (1 in SampleEvery, decided at
// StartTrace so the decision can propagate across nodes) OR its total
// duration reached SlowThreshold. Spans are recorded for every started
// trace — retention is decided at Finish — so a slow outlier always has its
// full span tree. The cost of that choice ("enabled but unsampled") is the
// overhead number bench/obs.go measures.
type Tracer struct {
	// SampleEvery retains roughly 1 in N finished traces. 0 disables
	// probabilistic retention.
	SampleEvery int
	// SlowThreshold retains any trace at least this slow. 0 disables.
	SlowThreshold time.Duration
	// Keep bounds the retained-trace ring buffer (default 32). Ignored
	// when Store is set explicitly.
	Keep int
	// Node attributes this tracer's retained traces to a fleet node
	// ("node-3") or host. Empty means single-node deployment.
	Node string
	// Store receives retained summaries. Fleet nodes share one store so
	// /debug/traces can stitch cross-node traces; nil means a private
	// store created on first retention.
	Store *TraceStore
	// Flight, when set, receives a TraceLite for every finished trace
	// (retained or not) — the flight recorder's always-on trace ring.
	Flight *FlightRecorder

	idPrefix uint64
	seq      atomic.Uint64
	pool     sync.Pool

	mu sync.Mutex // guards lazy Store creation
}

// NewTracer builds a tracer with the given retention policy.
func NewTracer(sampleEvery int, slowThreshold time.Duration) *Tracer {
	t := &Tracer{SampleEvery: sampleEvery, SlowThreshold: slowThreshold, Keep: 32}
	t.idPrefix = rand.Uint64() | 1 // non-zero so IDs are never all zeros
	t.pool.New = func() any { return &Trace{} }
	return t
}

// store returns the retention store, creating a private one sized by Keep
// on first use (so post-construction Keep tweaks are honored).
func (tr *Tracer) store() *TraceStore {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.Store == nil {
		tr.Store = NewTraceStore(tr.Keep)
	}
	return tr.Store
}

// StartTrace begins a new trace rooted at now. The sampling decision is
// made here — not at Finish — so it can ride the propagation headers.
func (tr *Tracer) StartTrace() *Trace {
	t := tr.pool.Get().(*Trace)
	t.tracer = tr
	t.begun = time.Now()
	t.seq = tr.seq.Add(1)
	t.id.Store(nil)
	t.n.Store(0)
	t.capped.Store(0)
	t.sampled = tr.SampleEvery > 0 && t.seq%uint64(tr.SampleEvery) == 0
	t.remote = false
	t.remoteParent = -1
	return t
}

// StartRemote begins a trace segment continuing a trace propagated from
// another node: it adopts the origin's trace ID and sampling decision and
// remembers the forwarder's span index so stitching can graft this
// segment's spans under it.
func (tr *Tracer) StartRemote(pc PropagationContext) *Trace {
	t := tr.StartTrace()
	if pc.TraceID == "" {
		return t
	}
	id := pc.TraceID
	t.id.Store(&id)
	t.remote = true
	t.remoteParent = pc.Parent
	t.sampled = pc.Sampled
	return t
}

// Root returns the SpanContext parenting top-level spans of t.
func (tr *Tracer) Root(t *Trace) SpanContext { return SpanContext{tr: t, parent: -1} }

// SpanView is the JSON shape of one span in a retained trace.
type SpanView struct {
	Name     string     `json:"name"`
	Detail   string     `json:"detail,omitempty"`
	Node     string     `json:"node,omitempty"` // set on grafted remote roots
	StartUs  float64    `json:"start_us"`
	Duration float64    `json:"duration_us"`
	Children []SpanView `json:"children,omitempty"`

	idx int32 // flat span index, for stitching remote segments under it
}

// TraceSummary is one retained trace (or trace segment), ready for
// /debug/traces.
type TraceSummary struct {
	ID       string     `json:"trace_id"`
	Node     string     `json:"node,omitempty"`
	Began    time.Time  `json:"began"`
	Duration float64    `json:"duration_ms"`
	Slow     bool       `json:"slow"`
	Dropped  int64      `json:"dropped_spans,omitempty"`
	Op       string     `json:"op,omitempty"`
	Remote   bool       `json:"remote,omitempty"`
	Spans    []SpanView `json:"spans"`

	// ParentSpan is the forwarder's span index for remote segments (-1 when
	// unknown); stitching grafts the segment under that span.
	ParentSpan int32 `json:"-"`
}

// Finish closes the trace, decides retention, and recycles the Trace when it
// is not retained. The *Trace must not be used after Finish. op labels the
// retained summary (e.g. "GET /api/.../tables").
func (tr *Tracer) Finish(t *Trace, op string) {
	took := time.Since(t.begun)
	slow := tr.SlowThreshold > 0 && took >= tr.SlowThreshold
	if fr := tr.Flight; fr != nil {
		lite := TraceLite{Op: op, Node: tr.Node, Began: t.begun, DurationUs: float64(took) / 1e3, Slow: slow}
		if p := t.id.Load(); p != nil {
			lite.ID = *p
		} else {
			lite.idNum = tr.idPrefix ^ t.seq
		}
		fr.noteTrace(lite)
	}
	if !slow && !t.sampled {
		tr.pool.Put(t)
		return
	}
	sum := &TraceSummary{
		ID:         t.ID(),
		Node:       tr.Node,
		Began:      t.begun,
		Duration:   float64(took) / 1e6,
		Slow:       slow,
		Dropped:    t.capped.Load(),
		Op:         op,
		Remote:     t.remote,
		ParentSpan: t.remoteParent,
		Spans:      t.tree(),
	}
	tr.store().add(sum)
	// Retained traces are not pooled: their span strings are referenced by
	// the summary-building loop above only by copy, but recycling here would
	// save little and risks racing a late Span.End from a leaked goroutine.
}

// tree assembles the parent-indexed span array into nested SpanViews.
func (t *Trace) tree() []SpanView {
	n := int(t.n.Load())
	if n > maxSpans {
		n = maxSpans
	}
	views := make([]SpanView, n)
	for i := 0; i < n; i++ {
		s := &t.spans[i]
		end := s.endNs
		if end == 0 {
			end = s.startNs
		}
		views[i] = SpanView{
			Name:     s.name,
			Detail:   s.detail,
			StartUs:  float64(s.startNs) / 1e3,
			Duration: float64(end-s.startNs) / 1e3,
			idx:      int32(i),
		}
	}
	var roots []SpanView
	// Children appear after parents (slot order is start order), so walking
	// backwards attaches grandchildren before their parent is lifted.
	for i := n - 1; i >= 0; i-- {
		p := t.spans[i].parent
		if p >= 0 && int(p) < n {
			views[p].Children = append([]SpanView{views[i]}, views[p].Children...)
		} else {
			roots = append([]SpanView{views[i]}, roots...)
		}
	}
	return roots
}

// Recent returns retained traces (raw segments, unstitched), newest first.
func (tr *Tracer) Recent() []*TraceSummary { return tr.store().Recent() }

// WriteRecentJSON writes the retained traces as a JSON array, with remote
// segments stitched into their origin trees (see TraceStore.Stitched).
func (tr *Tracer) WriteRecentJSON(w interface{ Write([]byte) (int, error) }) error {
	return tr.store().WriteJSON(w)
}

// --- shared retention store and cross-node stitching ---

// TraceStore is a ring of retained trace summaries. A single-node stack has
// one per tracer; a fleet shares one store across all node tracers so
// /debug/traces shows each logical request as one stitched tree.
type TraceStore struct {
	mu     sync.Mutex
	keep   int
	recent []*TraceSummary // ring, newest at highest index mod keep
	total  uint64          // summaries added (for ring ordering)
}

// NewTraceStore returns a store retaining up to keep summaries (0 = 32).
func NewTraceStore(keep int) *TraceStore {
	if keep <= 0 {
		keep = 32
	}
	return &TraceStore{keep: keep}
}

func (s *TraceStore) add(sum *TraceSummary) {
	s.mu.Lock()
	if len(s.recent) < s.keep {
		s.recent = append(s.recent, sum)
	} else {
		s.recent[s.total%uint64(s.keep)] = sum
	}
	s.total++
	s.mu.Unlock()
}

// Recent returns retained summaries, newest first.
func (s *TraceStore) Recent() []*TraceSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*TraceSummary, 0, len(s.recent))
	for i := 0; i < len(s.recent); i++ {
		idx := (s.total - 1 - uint64(i)) % uint64(s.keep)
		if int(idx) < len(s.recent) && s.recent[idx] != nil {
			out = append(out, s.recent[idx])
		}
	}
	return out
}

// Stitched returns retained traces with remote segments merged into their
// origin trees: a remote segment whose trace ID matches a retained origin
// trace is grafted under the origin span that forwarded it (a synthetic
// "remote" span carrying the segment's node), with its span offsets shifted
// onto the origin's clock. Remote segments whose origin was not retained
// (or was evicted) appear as standalone entries.
func (s *TraceStore) Stitched() []*TraceSummary {
	all := s.Recent()
	remotes := map[string][]*TraceSummary{}
	origins := map[string]bool{}
	for _, t := range all {
		if t.Remote {
			remotes[t.ID] = append(remotes[t.ID], t)
		} else {
			origins[t.ID] = true
		}
	}
	out := make([]*TraceSummary, 0, len(all))
	for _, t := range all {
		if t.Remote {
			if !origins[t.ID] {
				out = append(out, t) // orphan segment: origin not retained
			}
			continue
		}
		segs := remotes[t.ID]
		if len(segs) == 0 {
			out = append(out, t)
			continue
		}
		cp := *t
		cp.Spans = cloneSpans(t.Spans)
		for i := len(segs) - 1; i >= 0; i-- { // oldest segment first
			r := segs[i]
			shift := float64(r.Began.Sub(t.Began)) / 1e3 // µs on origin clock
			graft := SpanView{
				Name:     "remote",
				Detail:   r.Op,
				Node:     r.Node,
				StartUs:  shift,
				Duration: r.Duration * 1e3,
				Children: shiftSpans(r.Spans, shift),
				idx:      -1,
			}
			if !attachAt(cp.Spans, r.ParentSpan, graft) {
				cp.Spans = append(cp.Spans, graft)
			}
		}
		out = append(out, &cp)
	}
	return out
}

// cloneSpans deep-copies a span tree so grafting never mutates the retained
// summary.
func cloneSpans(in []SpanView) []SpanView {
	if in == nil {
		return nil
	}
	out := make([]SpanView, len(in))
	for i, s := range in {
		out[i] = s
		out[i].Children = cloneSpans(s.Children)
	}
	return out
}

// shiftSpans deep-copies a remote segment's spans with start offsets moved
// onto the origin trace's clock.
func shiftSpans(in []SpanView, byUs float64) []SpanView {
	if in == nil {
		return nil
	}
	out := make([]SpanView, len(in))
	for i, s := range in {
		out[i] = s
		out[i].StartUs = s.StartUs + byUs
		out[i].Children = shiftSpans(s.Children, byUs)
	}
	return out
}

// attachAt appends child under the span with flat index idx, returning
// false when no such span exists in the tree.
func attachAt(spans []SpanView, idx int32, child SpanView) bool {
	if idx < 0 {
		return false
	}
	for i := range spans {
		if spans[i].idx == idx {
			spans[i].Children = append(spans[i].Children, child)
			return true
		}
		if attachAt(spans[i].Children, idx, child) {
			return true
		}
	}
	return false
}

// WriteJSON writes the stitched retained traces as a JSON array.
func (s *TraceStore) WriteJSON(w interface{ Write([]byte) (int, error) }) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Stitched())
}

// --- context.Context plumbing for the HTTP layer ---

type ctxKey struct{}

// ContextWithSpan attaches sc to ctx.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// SpanFromContext extracts the SpanContext (zero value when absent).
func SpanFromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}
