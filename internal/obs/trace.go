package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpans bounds the per-trace span buffer. Requests deeper than this keep
// working; extra spans are counted in Dropped instead of recorded. 64 covers
// the deepest real path in the stack (HTTP → catalog → authz → cache →
// store → cloudsim) with a wide margin for fan-out.
const maxSpans = 64

// spanRec is one recorded span. Offsets are monotonic nanoseconds since the
// trace began, so span math never touches the wall clock after Start.
type spanRec struct {
	name    string
	detail  string
	parent  int32 // index of parent span, -1 for root children
	startNs int64
	endNs   int64 // 0 while open
}

// Trace is one request's span collection. It is created by a Tracer, carried
// through the stack as a SpanContext, and either retained (sampled or slow)
// or recycled at Finish. All methods are safe for concurrent use by the
// goroutines of one request.
type Trace struct {
	tracer *Tracer
	begun  time.Time

	// Lazy ID: a random 64-bit prefix fixed at Tracer construction plus a
	// per-trace sequence number, formatted only when something actually
	// needs the string (response header, audit record, retention).
	seq    uint64
	id     atomic.Pointer[string]
	n      atomic.Int32 // spans used (may exceed maxSpans; clamp on read)
	spans  [maxSpans]spanRec
	capped atomic.Int64 // spans dropped past maxSpans
}

// ID formats and caches the trace ID (16 hex chars, stable per trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	if p := t.id.Load(); p != nil {
		return *p
	}
	s := fmt.Sprintf("%016x", t.tracer.idPrefix^t.seq)
	t.id.CompareAndSwap(nil, &s)
	return *t.id.Load()
}

// start reserves a span slot and returns its index, or -1 if the buffer is
// full. One atomic add, no locks.
func (t *Trace) start(name, detail string, parent int32) int32 {
	i := t.n.Add(1) - 1
	if i >= maxSpans {
		t.capped.Add(1)
		return -1
	}
	t.spans[i] = spanRec{name: name, detail: detail, parent: parent, startNs: int64(time.Since(t.begun))}
	return i
}

func (t *Trace) end(i int32) {
	if i >= 0 && i < maxSpans {
		t.spans[i].endNs = int64(time.Since(t.begun))
	}
}

// SpanContext is the value threaded through the stack: which trace (if any)
// and which span is the current parent. The zero value is a no-op — every
// instrumentation site works unconditionally, costing one nil check when
// tracing is off.
type SpanContext struct {
	tr     *Trace
	parent int32
}

// Active reports whether a trace is attached.
func (sc SpanContext) Active() bool { return sc.tr != nil }

// TraceID returns the trace's ID, or "" when no trace is attached.
func (sc SpanContext) TraceID() string { return sc.tr.ID() }

// Span is an open span handle; call End when the operation completes.
type Span struct {
	tr *Trace
	i  int32
}

// Start opens a child span. The returned SpanContext parents subsequent
// spans under the new one; the Span must be End()ed.
func (sc SpanContext) Start(name string) (SpanContext, Span) {
	return sc.StartDetail(name, "")
}

// StartDetail opens a child span with a free-form detail (a table name, a
// batch size). detail must already be a string — build it only when
// sc.Active() to keep the disabled path allocation-free.
func (sc SpanContext) StartDetail(name, detail string) (SpanContext, Span) {
	if sc.tr == nil {
		return sc, Span{}
	}
	i := sc.tr.start(name, detail, sc.parent)
	if i < 0 {
		return sc, Span{}
	}
	return SpanContext{tr: sc.tr, parent: i}, Span{tr: sc.tr, i: i}
}

// End closes the span. Safe on the zero Span.
func (s Span) End() {
	if s.tr != nil {
		s.tr.end(s.i)
	}
}

// SetDetail replaces the span's detail after the fact (e.g. a batch size
// known only at completion). Safe on the zero Span.
func (s Span) SetDetail(detail string) {
	if s.tr != nil && s.i >= 0 && s.i < maxSpans {
		s.tr.spans[s.i].detail = detail
	}
}

// Tracer creates, samples, and retains traces. Retention policy: a trace is
// kept if it was probabilistically selected (1 in SampleEvery) OR its total
// duration reached SlowThreshold. Spans are recorded for every started
// trace — retention is decided at Finish — so a slow outlier always has its
// full span tree. The cost of that choice ("enabled but unsampled") is the
// overhead number bench/obs.go measures.
type Tracer struct {
	// SampleEvery retains roughly 1 in N finished traces. 0 disables
	// probabilistic retention.
	SampleEvery int
	// SlowThreshold retains any trace at least this slow. 0 disables.
	SlowThreshold time.Duration
	// Keep bounds the retained-trace ring buffer (default 32).
	Keep int

	idPrefix uint64
	seq      atomic.Uint64
	pool     sync.Pool

	mu     sync.Mutex
	recent []*TraceSummary // ring, newest at highest index mod Keep
	total  uint64          // traces finished (for ring ordering)
}

// NewTracer builds a tracer with the given retention policy.
func NewTracer(sampleEvery int, slowThreshold time.Duration) *Tracer {
	t := &Tracer{SampleEvery: sampleEvery, SlowThreshold: slowThreshold, Keep: 32}
	t.idPrefix = rand.Uint64() | 1 // non-zero so IDs are never all zeros
	t.pool.New = func() any { return &Trace{} }
	return t
}

// StartTrace begins a new trace rooted at now.
func (tr *Tracer) StartTrace() *Trace {
	t := tr.pool.Get().(*Trace)
	t.tracer = tr
	t.begun = time.Now()
	t.seq = tr.seq.Add(1)
	t.id.Store(nil)
	t.n.Store(0)
	t.capped.Store(0)
	return t
}

// Root returns the SpanContext parenting top-level spans of t.
func (tr *Tracer) Root(t *Trace) SpanContext { return SpanContext{tr: t, parent: -1} }

// SpanView is the JSON shape of one span in a retained trace.
type SpanView struct {
	Name     string     `json:"name"`
	Detail   string     `json:"detail,omitempty"`
	StartUs  float64    `json:"start_us"`
	Duration float64    `json:"duration_us"`
	Children []SpanView `json:"children,omitempty"`
}

// TraceSummary is one retained trace, ready for /debug/traces.
type TraceSummary struct {
	ID       string     `json:"trace_id"`
	Began    time.Time  `json:"began"`
	Duration float64    `json:"duration_ms"`
	Slow     bool       `json:"slow"`
	Dropped  int64      `json:"dropped_spans,omitempty"`
	Op       string     `json:"op,omitempty"`
	Spans    []SpanView `json:"spans"`
}

// Finish closes the trace, decides retention, and recycles the Trace when it
// is not retained. The *Trace must not be used after Finish. op labels the
// retained summary (e.g. "GET /api/.../tables").
func (tr *Tracer) Finish(t *Trace, op string) {
	took := time.Since(t.begun)
	slow := tr.SlowThreshold > 0 && took >= tr.SlowThreshold
	sampled := tr.SampleEvery > 0 && t.seq%uint64(tr.SampleEvery) == 0
	if !slow && !sampled {
		tr.pool.Put(t)
		return
	}
	sum := &TraceSummary{
		ID:       t.ID(),
		Began:    t.begun,
		Duration: float64(took) / 1e6,
		Slow:     slow,
		Dropped:  t.capped.Load(),
		Op:       op,
		Spans:    t.tree(),
	}
	tr.mu.Lock()
	keep := tr.Keep
	if keep <= 0 {
		keep = 32
	}
	if len(tr.recent) < keep {
		tr.recent = append(tr.recent, sum)
	} else {
		tr.recent[tr.total%uint64(keep)] = sum
	}
	tr.total++
	tr.mu.Unlock()
	// Retained traces are not pooled: their span strings are referenced by
	// the summary-building loop above only by copy, but recycling here would
	// save little and risks racing a late Span.End from a leaked goroutine.
}

// tree assembles the parent-indexed span array into nested SpanViews.
func (t *Trace) tree() []SpanView {
	n := int(t.n.Load())
	if n > maxSpans {
		n = maxSpans
	}
	views := make([]SpanView, n)
	for i := 0; i < n; i++ {
		s := &t.spans[i]
		end := s.endNs
		if end == 0 {
			end = s.startNs
		}
		views[i] = SpanView{
			Name:     s.name,
			Detail:   s.detail,
			StartUs:  float64(s.startNs) / 1e3,
			Duration: float64(end-s.startNs) / 1e3,
		}
	}
	var roots []SpanView
	// Children appear after parents (slot order is start order), so walking
	// backwards attaches grandchildren before their parent is lifted.
	for i := n - 1; i >= 0; i-- {
		p := t.spans[i].parent
		if p >= 0 && int(p) < n {
			views[p].Children = append([]SpanView{views[i]}, views[p].Children...)
		} else {
			roots = append([]SpanView{views[i]}, roots...)
		}
	}
	return roots
}

// Recent returns retained traces, newest first.
func (tr *Tracer) Recent() []*TraceSummary {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]*TraceSummary, 0, len(tr.recent))
	keep := tr.Keep
	if keep <= 0 {
		keep = 32
	}
	for i := 0; i < len(tr.recent); i++ {
		idx := (tr.total - 1 - uint64(i)) % uint64(keep)
		if int(idx) < len(tr.recent) && tr.recent[idx] != nil {
			out = append(out, tr.recent[idx])
		}
	}
	return out
}

// WriteRecentJSON writes the retained traces as a JSON array.
func (tr *Tracer) WriteRecentJSON(w interface{ Write([]byte) (int, error) }) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr.Recent())
}

// --- context.Context plumbing for the HTTP layer ---

type ctxKey struct{}

// ContextWithSpan attaches sc to ctx.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// SpanFromContext extracts the SpanContext (zero value when absent).
func SpanFromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}
