package obs

import (
	"testing"
	"time"
)

// Microbenchmarks for the always-on tracing primitives: the grid in
// internal/bench measures them embedded in real request paths; these
// isolate the per-trace and per-span floor.

func BenchmarkTraceLifecycle(b *testing.B) {
	tr := NewTracer(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := tr.StartTrace()
		tr.Finish(t, "bench")
	}
}

func BenchmarkTraceLifecycleWithID(b *testing.B) {
	tr := NewTracer(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := tr.StartTrace()
		_ = t.ID()
		tr.Finish(t, "bench")
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	tr := NewTracer(0, 0)
	t := tr.StartTrace()
	defer tr.Finish(t, "bench")
	sc := tr.Root(t)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := sc.Start("bench.span")
		sp.End()
	}
}

func BenchmarkTimeNow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = time.Now()
	}
}
