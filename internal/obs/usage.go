package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// UsageMeter attributes load to tenants (authenticated principals) with
// bounded memory: four space-saving sketches keyed by principal, fed from
// the HTTP layer (requests, response bytes, latency-weighted cost) and the
// catalog layer (authorized operations). The catalog is the chokepoint
// every engine crosses, so this is the natural place to answer "who is
// generating the load" without instrumenting the engines themselves.
//
// Exported metrics carry the tenant as a label but only ever for the top-K
// tracked keys plus a single aggregate — the sketch, not the label set,
// absorbs unbounded principal cardinality (think swarms of per-agent
// identities sharing one metastore).
type UsageMeter struct {
	// Requests counts HTTP requests per tenant.
	Requests *TopK
	// Bytes counts response-body bytes per tenant.
	Bytes *TopK
	// CostNs accumulates request wall-time per tenant in nanoseconds —
	// "latency-weighted cost", the fairest single number for how much
	// server capacity a tenant consumed.
	CostNs *TopK
	// Ops counts authorized catalog operations per tenant (fed by the
	// catalog layer, so fleet-forwarded work is attributed on the node
	// that executed it).
	Ops *TopK
}

// ResidualTenant is the label value carrying mass not attributed to a
// tracked tenant (evicted keys' lower-bound remainder).
const ResidualTenant = "_other"

// NewUsageMeter builds a meter tracking the top k tenants per dimension.
func NewUsageMeter(k int) *UsageMeter {
	return &UsageMeter{
		Requests: NewTopK(k),
		Bytes:    NewTopK(k),
		CostNs:   NewTopK(k),
		Ops:      NewTopK(k),
	}
}

// ObserveRequest attributes one finished HTTP request to tenant. Cost: one
// mutexed sketch update per dimension (~3 map hits), no allocation on the
// tracked-key path.
func (m *UsageMeter) ObserveRequest(tenant string, bytes int64, took time.Duration) {
	if m == nil || tenant == "" {
		return
	}
	m.Requests.Observe(tenant, 1)
	if bytes > 0 {
		m.Bytes.Observe(tenant, bytes)
	}
	if took > 0 {
		m.CostNs.Observe(tenant, int64(took))
	}
}

// ObserveOp attributes one authorized catalog operation to tenant.
func (m *UsageMeter) ObserveOp(tenant string) {
	if m == nil || tenant == "" {
		return
	}
	m.Ops.Observe(tenant, 1)
}

// RegisterMetrics exposes the meter as uc_tenant_* families. Each family
// emits one sample per tracked tenant plus a ResidualTenant sample, so the
// scrape-side cardinality is hard-bounded at k+1 per family.
func (m *UsageMeter) RegisterMetrics(r *Registry) {
	write := func(t *TopK, scale float64) func(io.Writer, string) {
		return func(w io.Writer, name string) {
			for _, e := range t.Entries() {
				if scale != 1 {
					fmt.Fprintf(w, "%s{tenant=\"%s\"} %s\n", name, escapeLabel(e.Key), formatFloat(float64(e.Count)*scale))
				} else {
					fmt.Fprintf(w, "%s{tenant=\"%s\"} %d\n", name, escapeLabel(e.Key), e.Count)
				}
			}
			if scale != 1 {
				fmt.Fprintf(w, "%s{tenant=\"%s\"} %s\n", name, ResidualTenant, formatFloat(float64(t.Residual())*scale))
			} else {
				fmt.Fprintf(w, "%s{tenant=\"%s\"} %d\n", name, ResidualTenant, t.Residual())
			}
		}
	}
	r.RegisterCustom("uc_tenant_requests_total", "HTTP requests by tenant (top-K space-saving estimate).", "counter", write(m.Requests, 1))
	r.RegisterCustom("uc_tenant_bytes_total", "Response bytes by tenant (top-K space-saving estimate).", "counter", write(m.Bytes, 1))
	r.RegisterCustom("uc_tenant_cost_seconds_total", "Request wall-time by tenant in seconds (top-K estimate).", "counter", write(m.CostNs, 1e-9))
	r.RegisterCustom("uc_tenant_catalog_ops_total", "Authorized catalog operations by tenant (top-K estimate).", "counter", write(m.Ops, 1))
}

// usageDim is the JSON shape of one metered dimension.
type usageDim struct {
	Total    int64       `json:"total"`
	Residual int64       `json:"residual"`
	Top      []TopKEntry `json:"top"`
}

// WriteJSON renders the meter for /debug/tenants.
func (m *UsageMeter) WriteJSON(w io.Writer) error {
	dim := func(t *TopK) usageDim {
		return usageDim{Total: t.Total(), Residual: t.Residual(), Top: t.Entries()}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]usageDim{
		"requests":    dim(m.Requests),
		"bytes":       dim(m.Bytes),
		"cost_ns":     dim(m.CostNs),
		"catalog_ops": dim(m.Ops),
	})
}
