// Package optimize implements predictive optimization (paper §6.3): a
// background service, enabled by Unity Catalog's metadata management, that
// automates table maintenance — compacting small files into well-sized
// clustered files, garbage-collecting unused files, and refreshing
// statistics. The Figure 10(c) experiment shows the resulting query-latency
// and storage improvements.
package optimize

import (
	"fmt"
	"sort"
	"time"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/delta"
	"unitycatalog/internal/erm"
)

// Options tunes the optimizer.
type Options struct {
	// TargetRowsPerFile is the compaction bin size (default 131072).
	TargetRowsPerFile int
	// MinFilesToCompact skips already-healthy tables (default 8).
	MinFilesToCompact int
	// VacuumHorizon is the tombstone age before blobs are deleted
	// (default 0: delete immediately — aggressive storage reclamation).
	VacuumHorizon time.Duration
}

// Optimizer runs maintenance over UC-managed Delta tables.
type Optimizer struct {
	Service *catalog.Service
	Opts    Options
}

// New returns an Optimizer with defaults applied.
func New(svc *catalog.Service, opts Options) *Optimizer {
	if opts.TargetRowsPerFile == 0 {
		opts.TargetRowsPerFile = 131072
	}
	if opts.MinFilesToCompact == 0 {
		opts.MinFilesToCompact = 8
	}
	return &Optimizer{Service: svc, Opts: opts}
}

// TableReport describes what one table's optimization did.
type TableReport struct {
	Table          string
	FilesBefore    int
	FilesAfter     int
	RowsRewritten  int64
	BlobsVacuumed  int
	BytesBefore    int64
	BytesAfter     int64
	ClusteredBy    string
	StatsRefreshed bool
	Skipped        bool
	SkipReason     string
}

// Report aggregates a maintenance sweep.
type Report struct {
	Tables []TableReport
}

// OptimizeTable compacts and clusters one table. The clustering column is
// the table property "optimize.clusterBy" or, absent that, the first
// integer column — the predictive part: the optimizer picks layout from
// catalog metadata without user tuning.
func (o *Optimizer) OptimizeTable(ctx catalog.Ctx, full string) (TableReport, error) {
	rep := TableReport{Table: full}
	e, err := o.Service.GetAsset(ctx, full)
	if err != nil {
		return rep, err
	}
	spec, err := catalog.TableSpecOf(e)
	if err != nil {
		return rep, err
	}
	if spec.Format != catalog.FormatDelta || e.StoragePath == "" {
		rep.Skipped, rep.SkipReason = true, "not a delta table"
		return rep, nil
	}
	tbl := delta.NewTable(e.StoragePath, delta.ServiceBlobs{Store: o.Service.Cloud()})
	snap, err := tbl.Snapshot()
	if err != nil {
		rep.Skipped, rep.SkipReason = true, "no delta log"
		return rep, nil
	}
	rep.FilesBefore = len(snap.Files)
	rep.BytesBefore = snap.TotalBytes()

	clusterBy := e.Properties["optimize.clusterBy"]
	if clusterBy == "" {
		for _, f := range snap.Schema.Fields {
			if f.Type == delta.TypeInt64 {
				clusterBy = f.Name
				break
			}
		}
	}
	rep.ClusteredBy = clusterBy

	if len(snap.Files) >= o.Opts.MinFilesToCompact {
		if err := o.compact(tbl, snap, clusterBy, &rep); err != nil {
			return rep, err
		}
		// Re-read for vacuum and checkpoint.
		snap, err = tbl.Snapshot()
		if err != nil {
			return rep, err
		}
		if err := tbl.Checkpoint(snap); err != nil {
			return rep, err
		}
	} else {
		rep.Skipped, rep.SkipReason = true, fmt.Sprintf("only %d files", len(snap.Files))
	}

	// Garbage collection of unused files.
	n, err := tbl.Vacuum(snap, o.Opts.VacuumHorizon)
	if err != nil {
		return rep, err
	}
	rep.BlobsVacuumed = n
	rep.BytesAfter = snap.TotalBytes()
	rep.FilesAfter = len(snap.Files)

	// Statistics refresh into catalog metadata.
	if _, err := o.Service.UpdateAsset(ctx, full, catalog.UpdateRequest{Properties: map[string]string{
		"stats.numRows":           fmt.Sprint(snap.NumRecords()),
		"stats.numFiles":          fmt.Sprint(len(snap.Files)),
		"optimize.lastRunVersion": fmt.Sprint(snap.Version),
	}}); err == nil {
		rep.StatsRefreshed = true
	}
	return rep, nil
}

// compact reads all rows, sorts them by the clustering column, and rewrites
// them as bin-packed files, committing one OPTIMIZE transaction.
func (o *Optimizer) compact(tbl *delta.Table, snap *delta.Snapshot, clusterBy string, rep *TableReport) error {
	scan, err := tbl.Scan(snap, nil, nil)
	if err != nil {
		return err
	}
	all := scan.Batch
	rep.RowsRewritten = int64(all.NumRows)
	if clusterBy != "" {
		all = sortBatchBy(all, clusterBy)
	}

	var actions []delta.Action
	now := tbl.Now().UnixMilli()
	for _, f := range snap.Files {
		actions = append(actions, delta.Action{Remove: &delta.RemoveFile{
			Path: f.Path, DeletionTimestamp: now, DataChange: false,
		}})
		// Compaction materializes deletion vectors (the scan above already
		// dropped DV-marked rows), so sidecars become garbage too.
		if f.DeletionVector != nil {
			actions = append(actions, delta.Action{Remove: &delta.RemoveFile{
				Path: f.DeletionVector.Path, DeletionTimestamp: now, DataChange: false,
			}})
		}
	}
	for from := 0; from < all.NumRows; from += o.Opts.TargetRowsPerFile {
		to := from + o.Opts.TargetRowsPerFile
		if to > all.NumRows {
			to = all.NumRows
		}
		part := all.Slice(from, to)
		data := delta.EncodeBatch(part)
		name := fmt.Sprintf("part-optimized-%020d-%d.dpf", snap.Version+1, from)
		if err := tbl.Blobs.Put(tbl.Path+"/"+name, data); err != nil {
			return err
		}
		actions = append(actions, delta.Action{Add: &delta.AddFile{
			Path: name, Size: int64(len(data)), ModificationTime: now,
			DataChange: false, Stats: delta.ComputeStats(part),
		}})
	}
	if _, err := tbl.Commit(snap, actions, "OPTIMIZE"); err != nil {
		return fmt.Errorf("optimize: commit: %w", err)
	}
	return nil
}

// sortBatchBy returns the batch's rows ordered by the named column.
func sortBatchBy(b *delta.Batch, col string) *delta.Batch {
	idx := make([]int, b.NumRows)
	for i := range idx {
		idx[i] = i
	}
	switch {
	case b.Ints[col] != nil:
		vals := b.Ints[col]
		sort.SliceStable(idx, func(i, j int) bool { return vals[idx[i]] < vals[idx[j]] })
	case b.Floats[col] != nil:
		vals := b.Floats[col]
		sort.SliceStable(idx, func(i, j int) bool { return vals[idx[i]] < vals[idx[j]] })
	case b.Strings[col] != nil:
		vals := b.Strings[col]
		sort.SliceStable(idx, func(i, j int) bool { return vals[idx[i]] < vals[idx[j]] })
	default:
		return b
	}
	out := delta.NewBatch(b.Schema)
	out.NumRows = b.NumRows
	for name, vals := range b.Ints {
		nv := make([]int64, len(vals))
		for i, from := range idx {
			nv[i] = vals[from]
		}
		out.Ints[name] = nv
	}
	for name, vals := range b.Floats {
		nv := make([]float64, len(vals))
		for i, from := range idx {
			nv[i] = vals[from]
		}
		out.Floats[name] = nv
	}
	for name, vals := range b.Strings {
		nv := make([]string, len(vals))
		for i, from := range idx {
			nv[i] = vals[from]
		}
		out.Strings[name] = nv
	}
	return out
}

// RunOnce sweeps every managed Delta table in the metastore that has not
// opted out (property "optimize.enabled" = "false") — the automated,
// catalog-driven maintenance loop of predictive optimization.
func (o *Optimizer) RunOnce(ctx catalog.Ctx) (Report, error) {
	var rep Report
	tables, err := o.Service.QueryAssets(ctx, catalog.Filter{Type: erm.TypeTable})
	if err != nil {
		return rep, err
	}
	for _, t := range tables {
		if t.Properties["optimize.enabled"] == "false" {
			rep.Tables = append(rep.Tables, TableReport{Table: t.FullName, Skipped: true, SkipReason: "opted out"})
			continue
		}
		tr, err := o.OptimizeTable(ctx, t.FullName)
		if err != nil {
			tr.Skipped, tr.SkipReason = true, err.Error()
		}
		rep.Tables = append(rep.Tables, tr)
	}
	return rep, nil
}
