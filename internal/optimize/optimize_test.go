package optimize

import (
	"testing"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/delta"
	"unitycatalog/internal/store"
)

func setup(t *testing.T) (*catalog.Service, catalog.Ctx, string) {
	t.Helper()
	db, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	svc, err := catalog.New(catalog.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	svc.CreateMetastore("ms1", "main", "r", "admin", "s3://root/ms1")
	admin := catalog.Ctx{Principal: "admin", Metastore: "ms1", TrustedEngine: true}
	svc.CreateCatalog(admin, "c", "")
	svc.CreateSchema(admin, "c", "s", "")
	e, err := svc.CreateTable(admin, "c.s", "t", catalog.TableSpec{Columns: []catalog.ColumnInfo{
		{Name: "id", Type: "BIGINT"}, {Name: "payload", Type: "STRING"},
	}}, "")
	if err != nil {
		t.Fatal(err)
	}
	return svc, admin, e.StoragePath
}

func seedFragmented(t *testing.T, svc *catalog.Service, path string, files, rowsPerFile int) *delta.Table {
	t.Helper()
	schema := delta.Schema{Fields: []delta.SchemaField{
		{Name: "id", Type: delta.TypeInt64}, {Name: "payload", Type: delta.TypeString},
	}}
	tbl, err := delta.Create(delta.ServiceBlobs{Store: svc.Cloud()}, path, "t", schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave ids across files so stats ranges overlap and pruning is
	// useless before optimization.
	for f := 0; f < files; f++ {
		b := delta.NewBatch(schema)
		for r := 0; r < rowsPerFile; r++ {
			id := int64(r*files + f)
			b.AppendRow(id, "xxxxxxxxxx")
		}
		if _, err := tbl.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestOptimizeCompactsAndClusters(t *testing.T) {
	svc, admin, path := setup(t)
	tbl := seedFragmented(t, svc, path, 20, 100)

	opt := New(svc, Options{TargetRowsPerFile: 500})
	rep, err := opt.OptimizeTable(admin, "c.s.t")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped {
		t.Fatalf("skipped: %s", rep.SkipReason)
	}
	if rep.FilesBefore != 20 || rep.RowsRewritten != 2000 {
		t.Fatalf("report = %+v", rep)
	}
	snap, _ := tbl.Snapshot()
	if len(snap.Files) != 4 {
		t.Fatalf("files after optimize = %d, want 4", len(snap.Files))
	}
	if snap.NumRecords() != 2000 {
		t.Fatalf("records = %d", snap.NumRecords())
	}
	// Clustering: a selective id-range scan now prunes most files.
	res, err := tbl.Scan(snap, []string{"id"}, []delta.Predicate{{Column: "id", Op: "<", Value: int64(100)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesSkipped != 3 || res.Batch.NumRows != 100 {
		t.Fatalf("post-optimize scan: skipped=%d rows=%d", res.FilesSkipped, res.Batch.NumRows)
	}
	// Old blobs were vacuumed (storage reclaimed).
	if rep.BlobsVacuumed != 20 {
		t.Fatalf("vacuumed = %d", rep.BlobsVacuumed)
	}
	// Stats were written back to catalog metadata.
	e, _ := svc.GetAsset(admin, "c.s.t")
	if e.Properties["stats.numRows"] != "2000" {
		t.Fatalf("stats property = %v", e.Properties)
	}
}

func TestOptimizeSkipsHealthyTables(t *testing.T) {
	svc, admin, path := setup(t)
	seedFragmented(t, svc, path, 2, 50)
	opt := New(svc, Options{MinFilesToCompact: 8})
	rep, err := opt.OptimizeTable(admin, "c.s.t")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Skipped {
		t.Fatalf("healthy table should be skipped: %+v", rep)
	}
}

func TestRunOnceHonorsOptOut(t *testing.T) {
	svc, admin, path := setup(t)
	seedFragmented(t, svc, path, 10, 10)
	if _, err := svc.UpdateAsset(admin, "c.s.t", catalog.UpdateRequest{
		Properties: map[string]string{"optimize.enabled": "false"},
	}); err != nil {
		t.Fatal(err)
	}
	opt := New(svc, Options{})
	rep, err := opt.RunOnce(admin)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || !rep.Tables[0].Skipped || rep.Tables[0].SkipReason != "opted out" {
		t.Fatalf("report = %+v", rep.Tables)
	}
}

func TestRunOnceOptimizesEligibleTables(t *testing.T) {
	svc, admin, path := setup(t)
	seedFragmented(t, svc, path, 10, 50)
	opt := New(svc, Options{TargetRowsPerFile: 250, MinFilesToCompact: 4})
	rep, err := opt.RunOnce(admin)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || rep.Tables[0].Skipped {
		t.Fatalf("report = %+v", rep.Tables)
	}
	if rep.Tables[0].FilesBefore != 10 {
		t.Fatalf("before = %d", rep.Tables[0].FilesBefore)
	}
}
