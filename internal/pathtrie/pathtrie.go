// Package pathtrie implements a trie over cloud-storage URLs used to enforce
// the one-asset-per-path principle: no two assets in a metastore may have
// overlapping storage paths, where paths overlap when one is a prefix of the
// other at a path-segment boundary (the same path counts as overlapping).
//
// The trie supports three operations the Unity Catalog core needs:
//
//   - Insert, which fails if the new path would overlap an existing one;
//   - Resolve, which maps an arbitrary object path to the unique asset whose
//     registered path is a prefix of it (used by credential vending); and
//   - Overlapping, which lists registered paths conflicting with a candidate
//     (used to produce actionable error messages at asset-creation time).
//
// Keys are URLs such as "s3://bucket/warehouse/db/table". The scheme and
// bucket form the first two segments; the object key is split on '/'.
package pathtrie

import (
	"fmt"
	"strings"
	"sync"
)

// Trie maps storage paths to opaque values (typically asset IDs).
// The zero value is not usable; call New.
type Trie struct {
	mu   sync.RWMutex
	root *node
	size int
}

type node struct {
	children map[string]*node
	// value is non-nil when a path terminates at this node.
	value any
	path  string
}

// New returns an empty Trie.
func New() *Trie {
	return &Trie{root: &node{children: map[string]*node{}}}
}

// ErrOverlap is returned by Insert when the candidate path overlaps a
// registered path.
type ErrOverlap struct {
	Path     string // the candidate path
	Existing string // the registered path it conflicts with
}

func (e *ErrOverlap) Error() string {
	return fmt.Sprintf("path %q overlaps existing path %q", e.Path, e.Existing)
}

// segments normalizes a storage URL into trie segments.
// "s3://bucket/a/b/" -> ["s3:", "bucket", "a", "b"].
func segments(path string) []string {
	path = strings.TrimSuffix(path, "/")
	var segs []string
	if i := strings.Index(path, "://"); i >= 0 {
		segs = append(segs, path[:i+1]) // "s3:"
		path = path[i+3:]
	}
	for _, s := range strings.Split(path, "/") {
		if s != "" {
			segs = append(segs, s)
		}
	}
	return segs
}

// Insert registers path with the given value. It returns *ErrOverlap if path
// equals, contains, or is contained by a registered path.
func (t *Trie) Insert(path string, value any) error {
	segs := segments(path)
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for _, s := range segs {
		if n.value != nil {
			return &ErrOverlap{Path: path, Existing: n.path}
		}
		child, ok := n.children[s]
		if !ok {
			child = &node{children: map[string]*node{}}
			n.children[s] = child
		}
		n = child
	}
	if n.value != nil {
		return &ErrOverlap{Path: path, Existing: n.path}
	}
	if len(n.children) > 0 {
		// The new path is a strict prefix of at least one registered path.
		return &ErrOverlap{Path: path, Existing: firstDescendantPath(n)}
	}
	n.value = value
	n.path = path
	t.size++
	return nil
}

func firstDescendantPath(n *node) string {
	for _, c := range n.children {
		if c.value != nil {
			return c.path
		}
		if p := firstDescendantPath(c); p != "" {
			return p
		}
	}
	return ""
}

// Remove unregisters path. It reports whether the path was present.
func (t *Trie) Remove(path string) bool {
	segs := segments(path)
	t.mu.Lock()
	defer t.mu.Unlock()
	// Walk down, remembering the chain so empty nodes can be pruned.
	chain := make([]*node, 0, len(segs)+1)
	chain = append(chain, t.root)
	n := t.root
	for _, s := range segs {
		child, ok := n.children[s]
		if !ok {
			return false
		}
		chain = append(chain, child)
		n = child
	}
	if n.value == nil {
		return false
	}
	n.value = nil
	n.path = ""
	t.size--
	// Prune now-empty nodes bottom-up.
	for i := len(chain) - 1; i > 0; i-- {
		cur := chain[i]
		if cur.value != nil || len(cur.children) > 0 {
			break
		}
		delete(chain[i-1].children, segs[i-1])
	}
	return true
}

// Resolve returns the value registered for the path that is a prefix of p
// (or equal to it), if any. This is the path→asset mapping guaranteed unique
// by the one-asset-per-path invariant.
func (t *Trie) Resolve(p string) (value any, registered string, ok bool) {
	segs := segments(p)
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for _, s := range segs {
		if n.value != nil {
			return n.value, n.path, true
		}
		child, present := n.children[s]
		if !present {
			return nil, "", false
		}
		n = child
	}
	if n.value != nil {
		return n.value, n.path, true
	}
	return nil, "", false
}

// Lookup returns the value registered exactly at path.
func (t *Trie) Lookup(path string) (any, bool) {
	segs := segments(path)
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for _, s := range segs {
		child, ok := n.children[s]
		if !ok {
			return nil, false
		}
		n = child
	}
	if n.value == nil {
		return nil, false
	}
	return n.value, true
}

// Overlapping returns the registered paths that overlap the candidate path:
// any registered prefix of it plus all registered paths underneath it.
func (t *Trie) Overlapping(path string) []string {
	segs := segments(path)
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []string
	n := t.root
	for _, s := range segs {
		if n.value != nil {
			out = append(out, n.path)
		}
		child, ok := n.children[s]
		if !ok {
			return out
		}
		n = child
	}
	collect(n, &out)
	return out
}

func collect(n *node, out *[]string) {
	if n.value != nil {
		*out = append(*out, n.path)
	}
	for _, c := range n.children {
		collect(c, out)
	}
}

// Len returns the number of registered paths.
func (t *Trie) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Walk calls fn for every registered path until fn returns false.
func (t *Trie) Walk(fn func(path string, value any) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	walk(t.root, fn)
}

func walk(n *node, fn func(string, any) bool) bool {
	if n.value != nil {
		if !fn(n.path, n.value) {
			return false
		}
	}
	for _, c := range n.children {
		if !walk(c, fn) {
			return false
		}
	}
	return true
}
