package pathtrie

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestInsertAndLookup(t *testing.T) {
	tr := New()
	if err := tr.Insert("s3://bucket/wh/db1/t1", "a"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := tr.Insert("s3://bucket/wh/db1/t2", "b"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if v, ok := tr.Lookup("s3://bucket/wh/db1/t1"); !ok || v != "a" {
		t.Fatalf("lookup = %v, %v", v, ok)
	}
	if _, ok := tr.Lookup("s3://bucket/wh/db1"); ok {
		t.Fatal("lookup of non-registered prefix should fail")
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}
}

func TestInsertOverlapRejected(t *testing.T) {
	cases := []struct {
		first, second string
	}{
		{"s3://b/wh/t1", "s3://b/wh/t1"},        // identical
		{"s3://b/wh/t1", "s3://b/wh/t1/part"},   // new under existing
		{"s3://b/wh/t1/part", "s3://b/wh/t1"},   // new above existing
		{"s3://b/wh", "s3://b/wh/deep/nested"},  // deep descendant
		{"s3://b/wh/deep/nested", "s3://b/wh"},  // deep ancestor
		{"s3://b/wh/t1/", "s3://b/wh/t1"},       // trailing slash
		{"gs://bucket/x", "gs://bucket/x/y/z/"}, // other scheme
	}
	for _, c := range cases {
		tr := New()
		if err := tr.Insert(c.first, 1); err != nil {
			t.Fatalf("first insert %q: %v", c.first, err)
		}
		err := tr.Insert(c.second, 2)
		if err == nil {
			t.Fatalf("insert %q after %q should overlap", c.second, c.first)
		}
		var oe *ErrOverlap
		if !asOverlap(err, &oe) {
			t.Fatalf("error %v is not *ErrOverlap", err)
		}
	}
}

func asOverlap(err error, target **ErrOverlap) bool {
	oe, ok := err.(*ErrOverlap)
	if ok {
		*target = oe
	}
	return ok
}

func TestSiblingsAndDifferentBucketsDoNotOverlap(t *testing.T) {
	tr := New()
	paths := []string{
		"s3://b/wh/t1", "s3://b/wh/t2", "s3://b/wh/t10", // t1 is not a prefix of t10 at segment boundary
		"s3://b2/wh/t1", "gs://b/wh/t1", "abfss://b/wh/t1",
	}
	for _, p := range paths {
		if err := tr.Insert(p, p); err != nil {
			t.Fatalf("insert %q: %v", p, err)
		}
	}
	if tr.Len() != len(paths) {
		t.Fatalf("len = %d, want %d", tr.Len(), len(paths))
	}
}

func TestResolve(t *testing.T) {
	tr := New()
	tr.Insert("s3://b/wh/db/t1", "t1")
	v, reg, ok := tr.Resolve("s3://b/wh/db/t1/part-0001.parquet")
	if !ok || v != "t1" || reg != "s3://b/wh/db/t1" {
		t.Fatalf("resolve = (%v,%q,%v)", v, reg, ok)
	}
	if _, _, ok := tr.Resolve("s3://b/wh/db/t2/file"); ok {
		t.Fatal("resolve of ungoverned path should fail")
	}
	if _, _, ok := tr.Resolve("s3://b/wh/db"); ok {
		t.Fatal("resolve of a strict ancestor should fail")
	}
	// Exact path resolves to itself.
	if v, _, ok := tr.Resolve("s3://b/wh/db/t1"); !ok || v != "t1" {
		t.Fatalf("exact resolve = %v, %v", v, ok)
	}
}

func TestRemove(t *testing.T) {
	tr := New()
	tr.Insert("s3://b/x/y", 1)
	if !tr.Remove("s3://b/x/y") {
		t.Fatal("remove should succeed")
	}
	if tr.Remove("s3://b/x/y") {
		t.Fatal("second remove should fail")
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d after remove", tr.Len())
	}
	// After removal, previously conflicting paths become insertable.
	if err := tr.Insert("s3://b/x", 2); err != nil {
		t.Fatalf("insert ancestor after remove: %v", err)
	}
}

func TestOverlapping(t *testing.T) {
	tr := New()
	tr.Insert("s3://b/wh/db/t1", 1)
	tr.Insert("s3://b/wh/db/t2", 2)
	got := tr.Overlapping("s3://b/wh/db")
	sort.Strings(got)
	want := []string{"s3://b/wh/db/t1", "s3://b/wh/db/t2"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("overlapping = %v, want %v", got, want)
	}
	got = tr.Overlapping("s3://b/wh/db/t1/file")
	if len(got) != 1 || got[0] != "s3://b/wh/db/t1" {
		t.Fatalf("overlapping ancestor = %v", got)
	}
	if got := tr.Overlapping("s3://b/other"); len(got) != 0 {
		t.Fatalf("overlapping unrelated = %v", got)
	}
}

func TestWalk(t *testing.T) {
	tr := New()
	for i := 0; i < 5; i++ {
		tr.Insert(fmt.Sprintf("s3://b/p/t%d", i), i)
	}
	n := 0
	tr.Walk(func(string, any) bool { n++; return true })
	if n != 5 {
		t.Fatalf("walked %d, want 5", n)
	}
	n = 0
	tr.Walk(func(string, any) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-stop walked %d, want 1", n)
	}
}

// TestQuickNoOverlapInvariant property-tests the core invariant: after any
// sequence of successful inserts, no registered path is a prefix of another.
func TestQuickNoOverlapInvariant(t *testing.T) {
	seg := []string{"a", "b", "c", "dd", "e1"}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		var accepted []string
		for i := 0; i < int(n%40)+1; i++ {
			depth := rng.Intn(4) + 1
			parts := make([]string, depth)
			for j := range parts {
				parts[j] = seg[rng.Intn(len(seg))]
			}
			p := "s3://bkt/" + strings.Join(parts, "/")
			if err := tr.Insert(p, i); err == nil {
				accepted = append(accepted, p)
			}
		}
		// Invariant: no accepted path is a segment-prefix of another.
		for i := range accepted {
			for j := range accepted {
				if i == j {
					continue
				}
				if accepted[i] == accepted[j] || strings.HasPrefix(accepted[j], accepted[i]+"/") {
					return false
				}
			}
		}
		// And every accepted path resolves to itself.
		for _, p := range accepted {
			if _, reg, ok := tr.Resolve(p + "/file"); !ok || reg != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInsertRemoveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		var paths []string
		for i := 0; i < 20; i++ {
			p := fmt.Sprintf("s3://b/%d/%d", rng.Intn(5), i)
			if tr.Insert(p, i) == nil {
				paths = append(paths, p)
			}
		}
		for _, p := range paths {
			if !tr.Remove(p) {
				return false
			}
		}
		return tr.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
