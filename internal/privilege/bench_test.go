package privilege

import (
	"fmt"
	"testing"

	"unitycatalog/internal/ids"
)

// deepFixture builds a metastore → catalog → schema → ... chain of the given
// depth with grants only near the top, so a check on the leaf must walk the
// whole chain for the privilege and again for every container gate. The
// principal belongs to a handful of groups, one of which holds the grants.
func deepFixture(depth int) (memHierarchy, *MemStore, memGroups, ids.ID) {
	h := memHierarchy{}
	g := NewMemStore()
	root := ids.New()
	h[root] = Securable{ID: root, Type: "METASTORE", Owner: "root"}
	parent := root
	var leaf ids.ID
	for i := 0; i < depth; i++ {
		id := ids.New()
		typ := "SCHEMA"
		switch i {
		case 0:
			typ = "CATALOG"
		case depth - 1:
			typ = "TABLE"
		}
		h[id] = Securable{ID: id, Type: typ, Parent: parent, Owner: "root"}
		if i == 0 {
			g.Add(Grant{Securable: id, Principal: "team", Privilege: UseCatalog})
			g.Add(Grant{Securable: id, Principal: "team", Privilege: UseSchema})
			g.Add(Grant{Securable: id, Principal: "team", Privilege: Select})
		}
		parent = id
		leaf = id
	}
	groups := memGroups{"alice": {"g0", "g1", "g2", "team"}}
	return h, g, groups, leaf
}

// BenchmarkCheckDeepCompiled measures the compiled fast path on the same
// chain as BenchmarkCheckDeepNaive: after the first walk compiles the
// memos, a check is a map lookup plus a bitset AND.
func BenchmarkCheckDeepCompiled(b *testing.B) {
	for _, depth := range []int{4, 8} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			h, g, groups, leaf := deepFixture(depth)
			eng := NewCompiled(h, g, groups, "alice")
			if d := eng.Check(Select, leaf); !d.Allowed {
				b.Fatalf("setup: %v", d)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if d := eng.Check(Select, leaf); !d.Allowed {
					b.Fatal(d)
				}
			}
		})
	}
}

// BenchmarkCheckDeepNaive measures the reference engine on a deep chain:
// one Check re-walks the ancestors once for the privilege and once per
// usage gate, scanning grants and re-expanding groups at every step.
func BenchmarkCheckDeepNaive(b *testing.B) {
	for _, depth := range []int{4, 8} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			h, g, groups, leaf := deepFixture(depth)
			eng := NewEngine(h, g, groups)
			if d := eng.Check("alice", Select, leaf); !d.Allowed {
				b.Fatalf("setup: %v", d)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if d := eng.Check("alice", Select, leaf); !d.Allowed {
					b.Fatal(d)
				}
			}
		})
	}
}
