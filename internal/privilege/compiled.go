package privilege

import (
	"fmt"
	"sync"

	"unitycatalog/internal/ids"
)

// This file implements the compiled authorization fast path. The reference
// Engine re-walks the ancestor chain once for the checked privilege and once
// per container gate — O(depth²) hierarchy lookups per decision, each with a
// linear grant scan and a fresh group expansion. A Snapshot compiles the
// same rules once per (metadata version, principal): the group closure is
// expanded once, and per-securable effective privilege sets and
// container-gate verdicts are memoized, so every sibling under one schema
// shares a single ancestor evaluation and a decision becomes one map lookup
// plus one bitset AND.
//
// Semantics are exactly the reference engine's (ownership, MANAGE
// implication, usage gating, broken-hierarchy denials) — the differential
// property test in property_test.go holds the two engines equal on every
// (principal, privilege, securable) triple over randomized worlds. The one
// documented divergence: grants carrying an *invalid* privilege name (which
// the catalog layer never persists) are ignored here but matched literally
// by the reference engine.

// Authorizer is the per-principal decision interface shared by the compiled
// fast path and the reference engine (via Engine.For). The catalog layer
// programs against this so the naive engine remains a drop-in oracle.
type Authorizer interface {
	// Check decides priv on id with container usage gating.
	Check(priv Privilege, id ids.ID) Decision
	// CheckNoGate decides priv on id without container gating.
	CheckNoGate(priv Privilege, id ids.ID) Decision
	// CheckMany batch-evaluates Check over ids, one decision per id.
	CheckMany(priv Privilege, secIDs []ids.ID) []Decision
	// IsOwner reports ownership-or-MANAGE administrative rights over id.
	IsOwner(id ids.ID) bool
	// EffectivePrivileges lists privileges held on id, inherited included.
	EffectivePrivileges(id ids.ID) []Privilege
	// EffectiveSet returns the expanded (check-semantics) privilege set on
	// id including the admin pseudo-bit, and whether the securable exists.
	// List filtering intersects this with a per-type visibility mask.
	EffectiveSet(id ids.ID) (PrivSet, bool)
}

// Snapshot is the compiled per-principal authorization state, valid for one
// version of the securable hierarchy and grant set. It is safe for
// concurrent use and is designed to be cached across requests (see
// SnapshotCache); bind it to the current request's readers with Bind.
type Snapshot struct {
	principal Principal
	who       map[Principal]struct{} // principal + transitive group closure

	mu    sync.Mutex
	secs  map[ids.ID]secMemo
	effs  map[ids.ID]effMemo
	gates map[ids.ID]gateMemo
}

type secMemo struct {
	sec Securable
	ok  bool
}

// effMemo carries both privilege encodings for a securable: check has the
// implication rules expanded (plus the admin bit), report is the literal
// grant listing for EffectivePrivileges.
type effMemo struct {
	check  PrivSet
	report PrivSet
}

type gateMemo struct {
	allowed bool
	reason  string
}

// NewSnapshot compiles the principal's group closure once. The groups
// resolver is consulted only here; decisions later never re-expand groups.
func NewSnapshot(p Principal, groups GroupResolver) *Snapshot {
	if groups == nil {
		groups = NoGroups{}
	}
	gs := groups.GroupsOf(p)
	who := make(map[Principal]struct{}, len(gs)+1)
	who[p] = struct{}{}
	for _, g := range gs {
		who[g] = struct{}{}
	}
	return &Snapshot{
		principal: p,
		who:       who,
		secs:      map[ids.ID]secMemo{},
		effs:      map[ids.ID]effMemo{},
		gates:     map[ids.ID]gateMemo{},
	}
}

// Principal returns the principal the snapshot was compiled for.
func (s *Snapshot) Principal() Principal { return s.principal }

// Bind attaches the snapshot to a request's hierarchy and grant readers,
// returning the compiled engine. Memoized state persists across binds; the
// readers are only consulted for securables not yet compiled, so they must
// present the same metadata version the snapshot was keyed by.
func (s *Snapshot) Bind(h HierarchyResolver, g Store) *Compiled {
	return &Compiled{h: h, g: g, snap: s}
}

// NewCompiled builds a compiled engine with a fresh single-use snapshot.
func NewCompiled(h HierarchyResolver, g Store, groups GroupResolver, p Principal) *Compiled {
	return NewSnapshot(p, groups).Bind(h, g)
}

// Compiled is a Snapshot bound to concrete readers for one request.
type Compiled struct {
	h    HierarchyResolver
	g    Store
	snap *Snapshot
}

var _ Authorizer = (*Compiled)(nil)

// securable resolves and memoizes one securable. Caller holds snap.mu.
func (c *Compiled) securable(id ids.ID) (Securable, bool) {
	if m, ok := c.snap.secs[id]; ok {
		return m.sec, m.ok
	}
	sec, ok := c.h.Securable(id)
	c.snap.secs[id] = secMemo{sec: sec, ok: ok}
	return sec, ok
}

// direct compiles the securable's own grants and ownership into privilege
// sets. Caller holds snap.mu.
func (c *Compiled) direct(sec Securable) effMemo {
	var m effMemo
	if _, mine := c.snap.who[sec.Owner]; mine {
		ch, rep := ownerSets()
		m.check |= ch
		m.report |= rep
	}
	for _, g := range c.g.GrantsOn(sec.ID) {
		if _, mine := c.snap.who[g.Principal]; !mine {
			continue
		}
		ch, rep := grantSets(g.Privilege)
		m.check |= ch
		m.report |= rep
	}
	return m
}

// effective returns the memoized inherited privilege sets for id: the
// securable's direct sets unioned with its parent's effective sets, in one
// O(depth) walk shared by every descendant. A missing ancestor truncates
// inheritance exactly like the reference engine's holdsInherited. Caller
// holds snap.mu.
func (c *Compiled) effective(id ids.ID) (effMemo, bool) {
	sec, ok := c.securable(id)
	if !ok {
		return effMemo{}, false
	}
	if m, done := c.snap.effs[id]; done {
		return m, true
	}
	m := c.direct(sec)
	if sec.Parent != ids.Nil {
		if pm, pok := c.effective(sec.Parent); pok {
			m.check |= pm.check
			m.report |= pm.report
		}
	}
	c.snap.effs[id] = m
	return m, true
}

// gate returns the memoized container-gate verdict for the securable's
// ancestor chain: every enclosing CATALOG/SCHEMA must yield its usage
// privilege. Verdicts are shared by all securables under the same parent.
// Caller holds snap.mu.
func (c *Compiled) gate(sec Securable) gateMemo {
	if m, ok := c.snap.gates[sec.ID]; ok {
		return m
	}
	var m gateMemo
	switch {
	case sec.Parent == ids.Nil:
		m = gateMemo{allowed: true}
	default:
		parent, ok := c.securable(sec.Parent)
		if !ok {
			m = gateMemo{allowed: false, reason: "broken hierarchy"}
			break
		}
		if usage, gated := usageFor[parent.Type]; gated {
			pm, _ := c.effective(parent.ID)
			if !pm.check.Has(usage) {
				m = gateMemo{allowed: false, reason: fmt.Sprintf("missing %s on %s", usage, parent.ID.Short())}
				break
			}
		}
		m = c.gate(parent)
	}
	c.snap.gates[sec.ID] = m
	return m
}

// Check implements Authorizer with one memoized ancestor walk.
func (c *Compiled) Check(priv Privilege, id ids.ID) Decision {
	c.snap.mu.Lock()
	defer c.snap.mu.Unlock()
	return c.checkLocked(priv, id)
}

func (c *Compiled) checkLocked(priv Privilege, id ids.ID) Decision {
	d := Decision{Principal: c.snap.principal, Privilege: priv, Securable: id}
	sec, ok := c.securable(id)
	if !ok {
		d.Reason = "securable not found"
		return d
	}
	m, _ := c.effective(id)
	if !m.check.Has(priv) {
		d.Reason = fmt.Sprintf("missing %s", priv)
		return d
	}
	if g := c.gate(sec); !g.allowed {
		d.Reason = g.reason
		return d
	}
	d.Allowed = true
	d.Reason = "ok"
	return d
}

// CheckNoGate implements Authorizer.
func (c *Compiled) CheckNoGate(priv Privilege, id ids.ID) Decision {
	c.snap.mu.Lock()
	defer c.snap.mu.Unlock()
	d := Decision{Principal: c.snap.principal, Privilege: priv, Securable: id}
	if _, ok := c.securable(id); !ok {
		d.Reason = "securable not found"
		return d
	}
	m, _ := c.effective(id)
	if m.check.Has(priv) {
		d.Allowed = true
		d.Reason = "ok"
	} else {
		d.Reason = fmt.Sprintf("missing %s", priv)
	}
	return d
}

// CheckMany implements Authorizer: the whole batch shares one lock
// acquisition and every memoized ancestor evaluation.
func (c *Compiled) CheckMany(priv Privilege, secIDs []ids.ID) []Decision {
	c.snap.mu.Lock()
	defer c.snap.mu.Unlock()
	out := make([]Decision, len(secIDs))
	for i, id := range secIDs {
		out[i] = c.checkLocked(priv, id)
	}
	return out
}

// IsOwner implements Authorizer.
func (c *Compiled) IsOwner(id ids.ID) bool {
	c.snap.mu.Lock()
	defer c.snap.mu.Unlock()
	m, ok := c.effective(id)
	return ok && m.check.HasAdmin()
}

// EffectivePrivileges implements Authorizer.
func (c *Compiled) EffectivePrivileges(id ids.ID) []Privilege {
	c.snap.mu.Lock()
	defer c.snap.mu.Unlock()
	m, ok := c.effective(id)
	if !ok {
		return nil
	}
	return m.report.Privileges()
}

// EffectiveSet implements Authorizer.
func (c *Compiled) EffectiveSet(id ids.ID) (PrivSet, bool) {
	c.snap.mu.Lock()
	defer c.snap.mu.Unlock()
	m, ok := c.effective(id)
	return m.check, ok
}

// --- reference-engine bridge ---

// For adapts the reference engine to the Authorizer interface for one
// principal. It is the oracle the compiled path is verified against and the
// implementation behind the catalog's naive-authorization ablation.
func (e *Engine) For(p Principal) Authorizer { return naiveAuthorizer{e: e, p: p} }

type naiveAuthorizer struct {
	e *Engine
	p Principal
}

func (n naiveAuthorizer) Check(priv Privilege, id ids.ID) Decision {
	return n.e.Check(n.p, priv, id)
}

func (n naiveAuthorizer) CheckNoGate(priv Privilege, id ids.ID) Decision {
	return n.e.CheckNoGate(n.p, priv, id)
}

func (n naiveAuthorizer) CheckMany(priv Privilege, secIDs []ids.ID) []Decision {
	out := make([]Decision, len(secIDs))
	for i, id := range secIDs {
		out[i] = n.e.Check(n.p, priv, id)
	}
	return out
}

func (n naiveAuthorizer) IsOwner(id ids.ID) bool { return n.e.IsOwner(n.p, id) }

func (n naiveAuthorizer) EffectivePrivileges(id ids.ID) []Privilege {
	return n.e.EffectivePrivileges(n.p, id)
}

func (n naiveAuthorizer) EffectiveSet(id ids.ID) (PrivSet, bool) {
	if _, ok := n.e.Hierarchy.Securable(id); !ok {
		return 0, false
	}
	var set PrivSet
	for _, priv := range n.e.EffectivePrivileges(n.p, id) {
		// The listing reports ALL PRIVILEGES for owners and MANAGE holders;
		// expanding it (and MANAGE itself) reconstructs check semantics.
		if priv == AllPrivileges || priv == Manage {
			set |= allPrivsMask
		} else {
			set |= bitOf(priv)
		}
	}
	if n.e.IsOwner(n.p, id) {
		set |= adminBit
	}
	return set, true
}
