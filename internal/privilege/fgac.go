package privilege

import (
	"encoding/json"
	"fmt"

	"unitycatalog/internal/ids"
)

// This file implements fine-grained access control (FGAC, paper §4.3.2) and
// attribute-based access control (ABAC, paper §3.3): row filters, column
// masks, and tag-driven policies that apply them dynamically across a scope.

// RowFilter restricts which rows of a table a principal may see. The filter
// is a predicate over column values evaluated by a trusted engine; the
// catalog only stores and vends it.
type RowFilter struct {
	// Column names referenced by the predicate.
	Columns []string `json:"columns"`
	// Predicate is a simple expression such as "region = 'EU'" or
	// "manager = current_user()"; the engine package evaluates it.
	Predicate string `json:"predicate"`
	// ExemptPrincipals see all rows.
	ExemptPrincipals []Principal `json:"exempt_principals,omitempty"`
}

// MaskKind selects how a column mask transforms values.
type MaskKind string

// Supported mask kinds.
const (
	MaskRedact  MaskKind = "REDACT"  // replace with a constant
	MaskNull    MaskKind = "NULL"    // replace with NULL
	MaskHash    MaskKind = "HASH"    // replace with a stable hash
	MaskPartial MaskKind = "PARTIAL" // keep last N characters
)

// ColumnMask hides or transforms a column for non-exempt principals.
type ColumnMask struct {
	Column           string      `json:"column"`
	Kind             MaskKind    `json:"kind"`
	Replacement      string      `json:"replacement,omitempty"` // for REDACT
	KeepLast         int         `json:"keep_last,omitempty"`   // for PARTIAL
	ExemptPrincipals []Principal `json:"exempt_principals,omitempty"`
}

// FGACPolicy is the per-table bundle of fine-grained rules stored on a table
// securable and vended (only to trusted engines) with its metadata.
type FGACPolicy struct {
	RowFilters  []RowFilter  `json:"row_filters,omitempty"`
	ColumnMasks []ColumnMask `json:"column_masks,omitempty"`
}

// Empty reports whether the policy has no rules.
func (p FGACPolicy) Empty() bool { return len(p.RowFilters) == 0 && len(p.ColumnMasks) == 0 }

// ForPrincipal returns the subset of the policy that applies to principal p
// (dropping rules p is exempt from). The groups slice lists p's groups.
func (p FGACPolicy) ForPrincipal(principal Principal, groups []Principal) FGACPolicy {
	isExempt := func(ex []Principal) bool {
		for _, e := range ex {
			if e == principal {
				return true
			}
			for _, g := range groups {
				if e == g {
					return true
				}
			}
		}
		return false
	}
	var out FGACPolicy
	for _, rf := range p.RowFilters {
		if !isExempt(rf.ExemptPrincipals) {
			out.RowFilters = append(out.RowFilters, rf)
		}
	}
	for _, cm := range p.ColumnMasks {
		if !isExempt(cm.ExemptPrincipals) {
			out.ColumnMasks = append(out.ColumnMasks, cm)
		}
	}
	return out
}

// Marshal encodes the policy for storage.
func (p FGACPolicy) Marshal() []byte {
	b, _ := json.Marshal(p)
	return b
}

// UnmarshalFGAC decodes a stored policy.
func UnmarshalFGAC(b []byte) (FGACPolicy, error) {
	var p FGACPolicy
	if len(b) == 0 {
		return p, nil
	}
	if err := json.Unmarshal(b, &p); err != nil {
		return p, fmt.Errorf("privilege: decode fgac policy: %w", err)
	}
	return p, nil
}

// --- ABAC ---

// ABACAction is what an ABAC rule does when its condition matches.
type ABACAction string

// Supported ABAC actions.
const (
	ABACGrant      ABACAction = "GRANT"       // grant a privilege to the principals
	ABACColumnMask ABACAction = "COLUMN_MASK" // apply a mask to matching tagged columns
	ABACRowFilter  ABACAction = "ROW_FILTER"  // apply a row filter to matching tables
	ABACDeny       ABACAction = "DENY"        // deny a privilege outright
)

// ABACRule is a tag-driven policy attached to a scope securable (typically a
// catalog or the metastore). It applies to all current and future securables
// within the scope whose tags satisfy the condition.
type ABACRule struct {
	ID    ids.ID `json:"id"`
	Name  string `json:"name"`
	Scope ids.ID `json:"scope"` // securable the rule is attached to
	// TagKey/TagValue match a tag on the securable or one of its columns.
	// Empty TagValue matches any value of TagKey.
	TagKey   string `json:"tag_key"`
	TagValue string `json:"tag_value,omitempty"`
	Action   ABACAction
	// Privilege for GRANT/DENY actions.
	Privilege Privilege `json:"privilege,omitempty"`
	// Mask for COLUMN_MASK actions, applied to every matching column.
	Mask *ColumnMask `json:"mask,omitempty"`
	// Filter for ROW_FILTER actions.
	Filter *RowFilter `json:"filter,omitempty"`
	// Principals the rule applies to; empty means all principals.
	Principals []Principal `json:"principals,omitempty"`
	// ExemptPrincipals are never affected (for masks/filters/denies).
	ExemptPrincipals []Principal `json:"exempt_principals,omitempty"`
}

// AppliesTo reports whether the rule covers principal p (with groups).
func (r ABACRule) AppliesTo(p Principal, groups []Principal) bool {
	member := func(list []Principal) bool {
		for _, x := range list {
			if x == p {
				return true
			}
			for _, g := range groups {
				if x == g {
					return true
				}
			}
		}
		return false
	}
	if member(r.ExemptPrincipals) {
		return false
	}
	if len(r.Principals) == 0 {
		return true
	}
	return member(r.Principals)
}

// MatchesTags reports whether a tag set satisfies the rule's condition.
func (r ABACRule) MatchesTags(tags map[string]string) bool {
	v, ok := tags[r.TagKey]
	if !ok {
		return false
	}
	return r.TagValue == "" || r.TagValue == v
}
