package privilege

import (
	"testing"

	"unitycatalog/internal/ids"
)

// TestMemStoreGrantsOnStableAcrossRemove is the regression test for the
// slice-aliasing bug: GrantsOn used to return the live internal slice and
// Remove compacted it in place, so a caller iterating a previously returned
// slice observed shifted/duplicated grants.
func TestMemStoreGrantsOnStableAcrossRemove(t *testing.T) {
	sec := ids.New()
	m := NewMemStore()
	m.Add(Grant{Securable: sec, Principal: "a", Privilege: Select})
	m.Add(Grant{Securable: sec, Principal: "b", Privilege: Modify})
	m.Add(Grant{Securable: sec, Principal: "c", Privilege: Execute})

	before := m.GrantsOn(sec)
	if !m.Remove(sec, "a", Select) {
		t.Fatal("remove reported grant missing")
	}

	want := []struct {
		p    Principal
		priv Privilege
	}{{"a", Select}, {"b", Modify}, {"c", Execute}}
	if len(before) != len(want) {
		t.Fatalf("snapshot length changed: %d", len(before))
	}
	for i, w := range want {
		if before[i].Principal != w.p || before[i].Privilege != w.priv {
			t.Fatalf("snapshot[%d] mutated by Remove: got %s %s, want %s %s",
				i, before[i].Principal, before[i].Privilege, w.p, w.priv)
		}
	}

	after := m.GrantsOn(sec)
	if len(after) != 2 || after[0].Principal != "b" || after[1].Principal != "c" {
		t.Fatalf("unexpected grants after remove: %v", after)
	}

	// Removing the last grants drops the key entirely.
	m.Remove(sec, "b", Modify)
	m.Remove(sec, "c", Execute)
	if gs := m.GrantsOn(sec); len(gs) != 0 {
		t.Fatalf("grants remain after removing all: %v", gs)
	}
	if _, ok := m.grants[sec]; ok {
		t.Fatal("empty grant slice retained in map")
	}
}

// TestEffectivePrivilegesManageExpansion pins the holdsDirect consistency
// fix: a MANAGE holder passes any Check, so the effective-privilege listing
// must include ALL PRIVILEGES alongside the literal MANAGE grant.
func TestEffectivePrivilegesManageExpansion(t *testing.T) {
	ms, tbl := ids.New(), ids.New()
	h := memHierarchy{
		ms:  {ID: ms, Type: "METASTORE", Owner: "root"},
		tbl: {ID: tbl, Type: "TABLE", Parent: ms, Owner: "root"},
	}
	g := NewMemStore()
	g.Add(Grant{Securable: ms, Principal: "ops", Privilege: Manage})
	eng := NewEngine(h, g, nil)

	got := eng.EffectivePrivileges("ops", tbl)
	want := []Privilege{AllPrivileges, Manage}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("EffectivePrivileges = %v, want %v", got, want)
	}
	// And the listing now agrees with what Check allows.
	if d := eng.Check("ops", Select, tbl); !d.Allowed {
		t.Fatalf("MANAGE holder denied SELECT: %v", d)
	}
}
