// Package privilege implements the Unity Catalog privilege model of the
// paper's Section 3.3: SQL-style grants on securables, ownership with full
// administrative rights, the MANAGE privilege, hierarchical privilege
// inheritance down the securable tree, usage-privilege gating (USE CATALOG /
// USE SCHEMA), fine-grained access control policies (row filters and column
// masks), and attribute-based access control (ABAC) rules keyed on tags.
//
// The package is deliberately independent of the entity model: callers
// supply a HierarchyResolver that walks a securable's ancestor chain, so the
// same engine governs every asset type registered with the catalog.
package privilege

import (
	"fmt"
	"sort"
	"strings"

	"unitycatalog/internal/ids"
)

// Privilege names a grantable right, mirroring UC's SQL-style privileges.
type Privilege string

// Privileges recognized by the model. Create* privileges are checked on the
// parent container; usage privileges gate traversal of containers.
const (
	Select         Privilege = "SELECT"
	Modify         Privilege = "MODIFY"
	ReadVolume     Privilege = "READ VOLUME"
	WriteVolume    Privilege = "WRITE VOLUME"
	Execute        Privilege = "EXECUTE"
	UseCatalog     Privilege = "USE CATALOG"
	UseSchema      Privilege = "USE SCHEMA"
	UseConnection  Privilege = "USE CONNECTION"
	CreateCatalog  Privilege = "CREATE CATALOG"
	CreateSchema   Privilege = "CREATE SCHEMA"
	CreateTable    Privilege = "CREATE TABLE"
	CreateVolume   Privilege = "CREATE VOLUME"
	CreateFunction Privilege = "CREATE FUNCTION"
	CreateModel    Privilege = "CREATE MODEL"
	CreateShare    Privilege = "CREATE SHARE"
	ReadFiles      Privilege = "READ FILES"
	WriteFiles     Privilege = "WRITE FILES"
	Manage         Privilege = "MANAGE"
	AllPrivileges  Privilege = "ALL PRIVILEGES"
)

// Principal identifies a user, group, or service identity.
type Principal string

// Grant records that a principal holds a privilege on a securable.
type Grant struct {
	Securable ids.ID    `json:"securable_id"`
	Principal Principal `json:"principal"`
	Privilege Privilege `json:"privilege"`
	GrantedBy Principal `json:"granted_by,omitempty"`
}

// Securable is the minimal view of an entity the privilege engine needs.
type Securable struct {
	ID     ids.ID
	Type   string
	Parent ids.ID // Nil for metastore-level securables
	Owner  Principal
}

// HierarchyResolver returns a securable and, transitively, its ancestors.
// Implementations are provided by the catalog layer.
type HierarchyResolver interface {
	Securable(id ids.ID) (Securable, bool)
}

// GroupResolver expands a principal to the groups it belongs to (directly
// and transitively). The principal itself need not be included.
type GroupResolver interface {
	GroupsOf(p Principal) []Principal
}

// NoGroups is a GroupResolver with no group memberships.
type NoGroups struct{}

// GroupsOf returns nil.
func (NoGroups) GroupsOf(Principal) []Principal { return nil }

// Store abstracts grant persistence. The catalog layer persists grants in
// the metadata store; tests can use MemStore.
type Store interface {
	// GrantsOn returns all grants on the securable.
	GrantsOn(id ids.ID) []Grant
}

// MemStore is an in-memory grant store, useful in tests and as the working
// representation inside the core service cache.
type MemStore struct {
	grants map[ids.ID][]Grant
}

// NewMemStore returns an empty MemStore.
func NewMemStore() *MemStore { return &MemStore{grants: map[ids.ID][]Grant{}} }

// Add inserts a grant, deduplicating exact repeats.
func (m *MemStore) Add(g Grant) {
	for _, have := range m.grants[g.Securable] {
		if have.Principal == g.Principal && have.Privilege == g.Privilege {
			return
		}
	}
	m.grants[g.Securable] = append(m.grants[g.Securable], g)
}

// Remove deletes a grant; it reports whether the grant existed. The
// surviving grants are copied into a fresh slice rather than compacted in
// place, so slices previously handed out by GrantsOn keep their contents.
func (m *MemStore) Remove(sec ids.ID, p Principal, priv Privilege) bool {
	gs := m.grants[sec]
	for i, g := range gs {
		if g.Principal == p && g.Privilege == priv {
			rest := make([]Grant, 0, len(gs)-1)
			rest = append(rest, gs[:i]...)
			rest = append(rest, gs[i+1:]...)
			if len(rest) == 0 {
				delete(m.grants, sec)
			} else {
				m.grants[sec] = rest
			}
			return true
		}
	}
	return false
}

// GrantsOn returns grants on the securable.
func (m *MemStore) GrantsOn(id ids.ID) []Grant { return m.grants[id] }

// Engine makes access-control decisions.
type Engine struct {
	Hierarchy HierarchyResolver
	Grants    Store
	Groups    GroupResolver
}

// NewEngine constructs an Engine. A nil groups resolver means no groups.
func NewEngine(h HierarchyResolver, g Store, groups GroupResolver) *Engine {
	if groups == nil {
		groups = NoGroups{}
	}
	return &Engine{Hierarchy: h, Grants: g, Groups: groups}
}

// usageFor maps a container type to the usage privilege that gates access to
// securables inside it.
var usageFor = map[string]Privilege{
	"CATALOG": UseCatalog,
	"SCHEMA":  UseSchema,
}

// principals returns p plus all groups p belongs to.
func (e *Engine) principals(p Principal) []Principal {
	out := []Principal{p}
	out = append(out, e.Groups.GroupsOf(p)...)
	return out
}

// holdsDirect reports whether any of the principals holds priv (or ALL
// PRIVILEGES, or MANAGE where manageImplies) directly granted on sec, or owns
// sec.
func (e *Engine) holdsDirect(sec Securable, who []Principal, priv Privilege) bool {
	for _, p := range who {
		if sec.Owner == p {
			return true
		}
	}
	for _, g := range e.Grants.GrantsOn(sec.ID) {
		for _, p := range who {
			if g.Principal != p {
				continue
			}
			if g.Privilege == priv || g.Privilege == AllPrivileges || g.Privilege == Manage {
				return true
			}
		}
	}
	return false
}

// holdsInherited reports whether who holds priv on sec directly or via any
// ancestor (privilege inheritance down the hierarchy).
func (e *Engine) holdsInherited(sec Securable, who []Principal, priv Privilege) bool {
	cur := sec
	for {
		if e.holdsDirect(cur, who, priv) {
			return true
		}
		if cur.Parent == ids.Nil {
			return false
		}
		parent, ok := e.Hierarchy.Securable(cur.Parent)
		if !ok {
			return false
		}
		cur = parent
	}
}

// Decision is the result of an authorization check, carrying enough context
// for audit logging.
type Decision struct {
	Allowed   bool
	Principal Principal
	Privilege Privilege
	Securable ids.ID
	Reason    string
}

// Check decides whether principal may exercise priv on securable id. It
// enforces both the privilege itself (with inheritance) and the usage
// privileges on every enclosing container, per the paper's model: SELECT on
// a table requires USE SCHEMA on its schema and USE CATALOG on its catalog.
func (e *Engine) Check(p Principal, priv Privilege, id ids.ID) Decision {
	d := Decision{Principal: p, Privilege: priv, Securable: id}
	sec, ok := e.Hierarchy.Securable(id)
	if !ok {
		d.Reason = "securable not found"
		return d
	}
	who := e.principals(p)

	// Owners (of the securable or any ancestor, via MANAGE semantics) hold
	// everything on it, including usage on containers below them.
	if !e.holdsInherited(sec, who, priv) {
		d.Reason = fmt.Sprintf("missing %s", priv)
		return d
	}

	// Usage gating on ancestors. An owner of (or MANAGE holder on) a
	// container implicitly passes its own gate.
	cur := sec
	for cur.Parent != ids.Nil {
		parent, ok := e.Hierarchy.Securable(cur.Parent)
		if !ok {
			d.Reason = "broken hierarchy"
			return d
		}
		if usage, gated := usageFor[parent.Type]; gated {
			if !e.holdsInherited(parent, who, usage) {
				d.Reason = fmt.Sprintf("missing %s on %s", usage, parent.ID.Short())
				return d
			}
		}
		cur = parent
	}
	d.Allowed = true
	d.Reason = "ok"
	return d
}

// CheckNoGate is Check without container usage gating; used for operations
// on the containers themselves (e.g. USE CATALOG on a catalog) and for
// administrative checks.
func (e *Engine) CheckNoGate(p Principal, priv Privilege, id ids.ID) Decision {
	d := Decision{Principal: p, Privilege: priv, Securable: id}
	sec, ok := e.Hierarchy.Securable(id)
	if !ok {
		d.Reason = "securable not found"
		return d
	}
	if e.holdsInherited(sec, e.principals(p), priv) {
		d.Allowed = true
		d.Reason = "ok"
	} else {
		d.Reason = fmt.Sprintf("missing %s", priv)
	}
	return d
}

// IsOwner reports whether p owns the securable or any of its ancestors, or
// holds MANAGE on one of them — i.e. has administrative rights over it.
func (e *Engine) IsOwner(p Principal, id ids.ID) bool {
	sec, ok := e.Hierarchy.Securable(id)
	if !ok {
		return false
	}
	who := e.principals(p)
	cur := sec
	for {
		for _, w := range who {
			if cur.Owner == w {
				return true
			}
		}
		for _, g := range e.Grants.GrantsOn(cur.ID) {
			if g.Privilege != Manage {
				continue
			}
			for _, w := range who {
				if g.Principal == w {
					return true
				}
			}
		}
		if cur.Parent == ids.Nil {
			return false
		}
		parent, ok := e.Hierarchy.Securable(cur.Parent)
		if !ok {
			return false
		}
		cur = parent
	}
}

// EffectivePrivileges lists the privileges p holds on the securable,
// including inherited ones, sorted for stable output. Ownership and MANAGE
// both pass every privilege check (holdsDirect), so each also reports
// ALL PRIVILEGES here — the listing and the checks agree on what p can do.
func (e *Engine) EffectivePrivileges(p Principal, id ids.ID) []Privilege {
	sec, ok := e.Hierarchy.Securable(id)
	if !ok {
		return nil
	}
	who := e.principals(p)
	set := map[Privilege]bool{}
	cur := sec
	for {
		for _, w := range who {
			if cur.Owner == w {
				set[AllPrivileges] = true
			}
		}
		for _, g := range e.Grants.GrantsOn(cur.ID) {
			for _, w := range who {
				if g.Principal == w {
					set[g.Privilege] = true
					if g.Privilege == Manage {
						set[AllPrivileges] = true
					}
				}
			}
		}
		if cur.Parent == ids.Nil {
			break
		}
		parent, ok := e.Hierarchy.Securable(cur.Parent)
		if !ok {
			break
		}
		cur = parent
	}
	out := make([]Privilege, 0, len(set))
	for pr := range set {
		out = append(out, pr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String implements fmt.Stringer for decisions (useful in audit records).
func (d Decision) String() string {
	verdict := "DENY"
	if d.Allowed {
		verdict = "ALLOW"
	}
	return fmt.Sprintf("%s %s %s on %s (%s)", verdict, d.Principal, d.Privilege, d.Securable.Short(), d.Reason)
}

// ValidPrivilege reports whether s names a known privilege.
func ValidPrivilege(s string) bool {
	switch Privilege(strings.ToUpper(s)) {
	case Select, Modify, ReadVolume, WriteVolume, Execute, UseCatalog, UseSchema,
		UseConnection, CreateCatalog, CreateSchema, CreateTable, CreateVolume,
		CreateFunction, CreateModel, CreateShare, ReadFiles, WriteFiles, Manage, AllPrivileges:
		return true
	}
	return false
}
