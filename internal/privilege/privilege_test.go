package privilege

import (
	"testing"

	"unitycatalog/internal/ids"
)

// memHierarchy is a test hierarchy resolver.
type memHierarchy map[ids.ID]Securable

func (m memHierarchy) Securable(id ids.ID) (Securable, bool) {
	s, ok := m[id]
	return s, ok
}

type memGroups map[Principal][]Principal

func (m memGroups) GroupsOf(p Principal) []Principal { return m[p] }

// fixture builds metastore -> catalog -> schema -> table.
func fixture() (memHierarchy, ids.ID, ids.ID, ids.ID, ids.ID) {
	msID, catID, schID, tblID := ids.New(), ids.New(), ids.New(), ids.New()
	h := memHierarchy{
		msID:  {ID: msID, Type: "METASTORE", Owner: "admin"},
		catID: {ID: catID, Type: "CATALOG", Parent: msID, Owner: "cat_owner"},
		schID: {ID: schID, Type: "SCHEMA", Parent: catID, Owner: "sch_owner"},
		tblID: {ID: tblID, Type: "TABLE", Parent: schID, Owner: "tbl_owner"},
	}
	return h, msID, catID, schID, tblID
}

func TestOwnerHoldsEverything(t *testing.T) {
	h, _, _, _, tbl := fixture()
	eng := NewEngine(h, NewMemStore(), nil)
	// Table owner holds SELECT on the table but is still gated by container
	// usage privileges they don't hold... unless they own an ancestor.
	d := eng.CheckNoGate("tbl_owner", Select, tbl)
	if !d.Allowed {
		t.Fatalf("owner denied: %v", d)
	}
}

func TestUsageGating(t *testing.T) {
	h, _, cat, sch, tbl := fixture()
	g := NewMemStore()
	eng := NewEngine(h, g, nil)

	g.Add(Grant{Securable: tbl, Principal: "alice", Privilege: Select})
	if d := eng.Check("alice", Select, tbl); d.Allowed {
		t.Fatalf("SELECT without USE SCHEMA/CATALOG should be denied: %v", d)
	}
	g.Add(Grant{Securable: sch, Principal: "alice", Privilege: UseSchema})
	if d := eng.Check("alice", Select, tbl); d.Allowed {
		t.Fatalf("still missing USE CATALOG: %v", d)
	}
	g.Add(Grant{Securable: cat, Principal: "alice", Privilege: UseCatalog})
	if d := eng.Check("alice", Select, tbl); !d.Allowed {
		t.Fatalf("full chain should allow: %v", d)
	}
}

func TestPrivilegeInheritance(t *testing.T) {
	h, _, cat, _, tbl := fixture()
	g := NewMemStore()
	eng := NewEngine(h, g, nil)
	// SELECT granted at the catalog propagates to tables; the catalog-level
	// grant also needs the usage chain, which catalog-level SELECT does not
	// imply — grant usage too.
	g.Add(Grant{Securable: cat, Principal: "bob", Privilege: Select})
	g.Add(Grant{Securable: cat, Principal: "bob", Privilege: UseCatalog})
	g.Add(Grant{Securable: cat, Principal: "bob", Privilege: UseSchema})
	if d := eng.Check("bob", Select, tbl); !d.Allowed {
		t.Fatalf("inherited SELECT denied: %v", d)
	}
	// But MODIFY was never granted.
	if d := eng.Check("bob", Modify, tbl); d.Allowed {
		t.Fatal("MODIFY should be denied")
	}
}

func TestAdminsDoNotImplicitlyRead(t *testing.T) {
	// Paper §3.3: a schema owner does not automatically gain SELECT on
	// tables — in our model ownership of an ancestor does confer admin
	// rights; the separation is that *grants* of administrative privileges
	// (MANAGE) imply privileges only on the granted securable subtree.
	h, _, _, sch, tbl := fixture()
	g := NewMemStore()
	eng := NewEngine(h, g, nil)
	// carol holds MANAGE on the schema: she can administer and read within.
	g.Add(Grant{Securable: sch, Principal: "carol", Privilege: Manage})
	if !eng.IsOwner("carol", tbl) {
		t.Fatal("MANAGE on schema should confer admin over its tables")
	}
}

func TestGroupMembership(t *testing.T) {
	h, _, cat, sch, tbl := fixture()
	g := NewMemStore()
	groups := memGroups{"dave": {"analysts"}}
	eng := NewEngine(h, g, groups)
	g.Add(Grant{Securable: tbl, Principal: "analysts", Privilege: Select})
	g.Add(Grant{Securable: sch, Principal: "analysts", Privilege: UseSchema})
	g.Add(Grant{Securable: cat, Principal: "analysts", Privilege: UseCatalog})
	if d := eng.Check("dave", Select, tbl); !d.Allowed {
		t.Fatalf("group grant denied: %v", d)
	}
	if d := eng.Check("eve", Select, tbl); d.Allowed {
		t.Fatal("non-member allowed")
	}
}

func TestDefaultDeny(t *testing.T) {
	h, _, _, _, tbl := fixture()
	eng := NewEngine(h, NewMemStore(), nil)
	if d := eng.Check("random", Select, tbl); d.Allowed {
		t.Fatal("default should be deny")
	}
	if d := eng.Check("random", Select, ids.New()); d.Allowed {
		t.Fatal("unknown securable should deny")
	}
}

func TestEffectivePrivileges(t *testing.T) {
	h, _, cat, _, tbl := fixture()
	g := NewMemStore()
	eng := NewEngine(h, g, nil)
	g.Add(Grant{Securable: cat, Principal: "alice", Privilege: UseCatalog})
	g.Add(Grant{Securable: tbl, Principal: "alice", Privilege: Select})
	privs := eng.EffectivePrivileges("alice", tbl)
	if len(privs) != 2 || privs[0] != Select || privs[1] != UseCatalog {
		t.Fatalf("effective = %v", privs)
	}
	if privs := eng.EffectivePrivileges("tbl_owner", tbl); len(privs) != 1 || privs[0] != AllPrivileges {
		t.Fatalf("owner effective = %v", privs)
	}
}

func TestMemStoreAddRemove(t *testing.T) {
	g := NewMemStore()
	id := ids.New()
	g.Add(Grant{Securable: id, Principal: "p", Privilege: Select})
	g.Add(Grant{Securable: id, Principal: "p", Privilege: Select}) // dup
	if len(g.GrantsOn(id)) != 1 {
		t.Fatalf("grants = %v", g.GrantsOn(id))
	}
	if !g.Remove(id, "p", Select) {
		t.Fatal("remove should succeed")
	}
	if g.Remove(id, "p", Select) {
		t.Fatal("second remove should fail")
	}
}

func TestValidPrivilege(t *testing.T) {
	for _, s := range []string{"SELECT", "select", "USE CATALOG", "MANAGE", "ALL PRIVILEGES"} {
		if !ValidPrivilege(s) {
			t.Errorf("%q should be valid", s)
		}
	}
	for _, s := range []string{"", "DROP", "SUDO"} {
		if ValidPrivilege(s) {
			t.Errorf("%q should be invalid", s)
		}
	}
}

func TestFGACForPrincipal(t *testing.T) {
	p := FGACPolicy{
		RowFilters: []RowFilter{{Predicate: "region = 'EU'", ExemptPrincipals: []Principal{"admin", "auditors"}}},
		ColumnMasks: []ColumnMask{
			{Column: "ssn", Kind: MaskRedact, Replacement: "***", ExemptPrincipals: []Principal{"admin"}},
			{Column: "email", Kind: MaskHash},
		},
	}
	if p.Empty() {
		t.Fatal("policy should not be empty")
	}
	eff := p.ForPrincipal("alice", nil)
	if len(eff.RowFilters) != 1 || len(eff.ColumnMasks) != 2 {
		t.Fatalf("alice policy = %+v", eff)
	}
	eff = p.ForPrincipal("admin", nil)
	if len(eff.RowFilters) != 0 || len(eff.ColumnMasks) != 1 {
		t.Fatalf("admin policy = %+v", eff)
	}
	// Group exemption.
	eff = p.ForPrincipal("frank", []Principal{"auditors"})
	if len(eff.RowFilters) != 0 {
		t.Fatalf("auditor policy = %+v", eff)
	}
	// Round trip.
	b := p.Marshal()
	back, err := UnmarshalFGAC(b)
	if err != nil || len(back.RowFilters) != 1 || len(back.ColumnMasks) != 2 {
		t.Fatalf("round trip: %+v, %v", back, err)
	}
	if empty, err := UnmarshalFGAC(nil); err != nil || !empty.Empty() {
		t.Fatalf("empty round trip: %+v, %v", empty, err)
	}
}

func TestABACRuleMatching(t *testing.T) {
	r := ABACRule{
		TagKey: "classification", TagValue: "pii",
		Action: ABACColumnMask, Mask: &ColumnMask{Kind: MaskRedact, Replacement: "xxx"},
		ExemptPrincipals: []Principal{"dpo"},
	}
	if !r.MatchesTags(map[string]string{"classification": "pii"}) {
		t.Fatal("should match")
	}
	if r.MatchesTags(map[string]string{"classification": "public"}) {
		t.Fatal("wrong value should not match")
	}
	if r.MatchesTags(map[string]string{"other": "pii"}) {
		t.Fatal("wrong key should not match")
	}
	// Empty TagValue matches any value.
	any := ABACRule{TagKey: "pii"}
	if !any.MatchesTags(map[string]string{"pii": "whatever"}) {
		t.Fatal("wildcard value should match")
	}
	if !r.AppliesTo("alice", nil) {
		t.Fatal("applies to everyone by default")
	}
	if r.AppliesTo("dpo", nil) {
		t.Fatal("exempt principal should not be covered")
	}
	scoped := ABACRule{TagKey: "k", Principals: []Principal{"team-a"}}
	if scoped.AppliesTo("bob", nil) {
		t.Fatal("principal-scoped rule should not cover bob")
	}
	if !scoped.AppliesTo("bob", []Principal{"team-a"}) {
		t.Fatal("group membership should bring bob in scope")
	}
}
