package privilege

import "sort"

// PrivSet is a compiled bitset of privileges. Each named privilege maps to
// one bit; bit 31 is an admin pseudo-bit recording ownership-or-MANAGE
// administrative rights (the IsOwner relation), which is distinct from
// holding every privilege: an ALL PRIVILEGES grant confers every privilege
// but not administration.
//
// ALL PRIVILEGES, MANAGE, and ownership expand to full masks at compile
// time (see grantSets), so a check is a single AND instead of re-deriving
// the implication rules per decision.
type PrivSet uint32

// Bit positions for the named privileges. The order is arbitrary but
// fixed; new privileges must be appended (19 of 31 usable bits are taken).
const (
	bitSelect PrivSet = 1 << iota
	bitModify
	bitReadVolume
	bitWriteVolume
	bitExecute
	bitUseCatalog
	bitUseSchema
	bitUseConnection
	bitCreateCatalog
	bitCreateSchema
	bitCreateTable
	bitCreateVolume
	bitCreateFunction
	bitCreateModel
	bitCreateShare
	bitReadFiles
	bitWriteFiles
	bitManage
	bitAllPrivileges

	// adminBit marks ownership or a literal MANAGE grant somewhere on the
	// ancestor chain — the IsOwner relation, kept separate because an ALL
	// PRIVILEGES grant passes every Check but does not confer admin rights.
	adminBit PrivSet = 1 << 31
)

// allPrivsMask has every named privilege bit set (not the admin bit).
const allPrivsMask = bitAllPrivileges<<1 - 1

// privBitNames pairs each bit with its privilege, in bit order, for decode.
var privBitNames = [...]struct {
	bit  PrivSet
	priv Privilege
}{
	{bitSelect, Select}, {bitModify, Modify}, {bitReadVolume, ReadVolume},
	{bitWriteVolume, WriteVolume}, {bitExecute, Execute}, {bitUseCatalog, UseCatalog},
	{bitUseSchema, UseSchema}, {bitUseConnection, UseConnection},
	{bitCreateCatalog, CreateCatalog}, {bitCreateSchema, CreateSchema},
	{bitCreateTable, CreateTable}, {bitCreateVolume, CreateVolume},
	{bitCreateFunction, CreateFunction}, {bitCreateModel, CreateModel},
	{bitCreateShare, CreateShare}, {bitReadFiles, ReadFiles},
	{bitWriteFiles, WriteFiles}, {bitManage, Manage}, {bitAllPrivileges, AllPrivileges},
}

// bitOf returns the bit for a privilege, or 0 for unknown privilege names.
func bitOf(p Privilege) PrivSet {
	switch p {
	case Select:
		return bitSelect
	case Modify:
		return bitModify
	case ReadVolume:
		return bitReadVolume
	case WriteVolume:
		return bitWriteVolume
	case Execute:
		return bitExecute
	case UseCatalog:
		return bitUseCatalog
	case UseSchema:
		return bitUseSchema
	case UseConnection:
		return bitUseConnection
	case CreateCatalog:
		return bitCreateCatalog
	case CreateSchema:
		return bitCreateSchema
	case CreateTable:
		return bitCreateTable
	case CreateVolume:
		return bitCreateVolume
	case CreateFunction:
		return bitCreateFunction
	case CreateModel:
		return bitCreateModel
	case CreateShare:
		return bitCreateShare
	case ReadFiles:
		return bitReadFiles
	case WriteFiles:
		return bitWriteFiles
	case Manage:
		return bitManage
	case AllPrivileges:
		return bitAllPrivileges
	}
	return 0
}

// grantSets returns the (check, report) contribution of one granted
// privilege. The check set expands the implication rules — ALL PRIVILEGES
// and MANAGE each pass any privilege check, and MANAGE additionally confers
// administration — while the report set stays literal except that MANAGE
// also reports ALL PRIVILEGES (a MANAGE holder passes every check, so the
// effective-privilege listing reflects the full set; see
// Engine.EffectivePrivileges).
func grantSets(p Privilege) (check, report PrivSet) {
	switch p {
	case AllPrivileges:
		return allPrivsMask, bitAllPrivileges
	case Manage:
		return allPrivsMask | adminBit, bitManage | bitAllPrivileges
	}
	b := bitOf(p)
	return b, b
}

// ownerSets is the (check, report) contribution of ownership: every
// privilege plus administration, reported as ALL PRIVILEGES.
func ownerSets() (check, report PrivSet) {
	return allPrivsMask | adminBit, bitAllPrivileges
}

// PrivSetOf builds a literal bitset from privileges (no implication
// expansion; unknown privileges are ignored).
func PrivSetOf(privs ...Privilege) PrivSet {
	var s PrivSet
	for _, p := range privs {
		s |= bitOf(p)
	}
	return s
}

// Has reports whether the set passes a check for p, applying the same
// fallback as the reference engine for unknown privilege names: only a
// wildcard (ownership, ALL PRIVILEGES, or MANAGE, all of which set the
// ALL PRIVILEGES bit) passes them.
func (s PrivSet) Has(p Privilege) bool {
	b := bitOf(p)
	if b == 0 {
		b = bitAllPrivileges
	}
	return s&b != 0
}

// HasAdmin reports ownership-or-MANAGE administrative rights.
func (s PrivSet) HasAdmin() bool { return s&adminBit != 0 }

// Intersects reports whether the sets share any privilege bit.
func (s PrivSet) Intersects(o PrivSet) bool { return s&o&allPrivsMask != 0 }

// Privileges decodes the set into a sorted privilege list (admin bit
// excluded), matching the reference engine's EffectivePrivileges output
// order.
func (s PrivSet) Privileges() []Privilege {
	if s&allPrivsMask == 0 {
		return nil
	}
	out := make([]Privilege, 0, 4)
	for _, e := range privBitNames {
		if s&e.bit != 0 {
			out = append(out, e.priv)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
