package privilege

import (
	"math/rand"
	"testing"
	"testing/quick"

	"unitycatalog/internal/ids"
)

// TestQuickGrantMonotonicity property-tests a core soundness property of
// the privilege model: adding grants never revokes access. For any random
// hierarchy, grant set, and check, if a principal is allowed, they remain
// allowed after any additional grant is added anywhere.
func TestQuickGrantMonotonicity(t *testing.T) {
	privs := []Privilege{Select, Modify, UseCatalog, UseSchema, Execute, Manage}
	people := []Principal{"a", "b", "c"}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build a metastore -> catalog -> schema -> table chain plus a
		// sibling table.
		ms, cat, sch, t1, t2 := ids.New(), ids.New(), ids.New(), ids.New(), ids.New()
		h := memHierarchy{
			ms:  {ID: ms, Type: "METASTORE", Owner: "root"},
			cat: {ID: cat, Type: "CATALOG", Parent: ms, Owner: "root"},
			sch: {ID: sch, Type: "SCHEMA", Parent: cat, Owner: "root"},
			t1:  {ID: t1, Type: "TABLE", Parent: sch, Owner: "root"},
			t2:  {ID: t2, Type: "TABLE", Parent: sch, Owner: "root"},
		}
		all := []ids.ID{ms, cat, sch, t1, t2}
		g := NewMemStore()
		eng := NewEngine(h, g, nil)

		// Random initial grants.
		for i := 0; i < rng.Intn(8); i++ {
			g.Add(Grant{
				Securable: all[rng.Intn(len(all))],
				Principal: people[rng.Intn(len(people))],
				Privilege: privs[rng.Intn(len(privs))],
			})
		}
		// Record every (principal, privilege, securable) decision.
		type key struct {
			p    Principal
			priv Privilege
			sec  ids.ID
		}
		before := map[key]bool{}
		for _, p := range people {
			for _, pr := range privs {
				for _, sec := range all {
					before[key{p, pr, sec}] = eng.Check(p, pr, sec).Allowed
				}
			}
		}
		// Add one more random grant.
		g.Add(Grant{
			Securable: all[rng.Intn(len(all))],
			Principal: people[rng.Intn(len(people))],
			Privilege: privs[rng.Intn(len(privs))],
		})
		// Nothing that was allowed may become denied.
		for k, wasAllowed := range before {
			if wasAllowed && !eng.Check(k.p, k.priv, k.sec).Allowed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRevokeNeverExpands is the dual: removing a grant never grants
// anyone new access.
func TestQuickRevokeNeverExpands(t *testing.T) {
	privs := []Privilege{Select, Modify, UseCatalog, UseSchema}
	people := []Principal{"a", "b"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ms, cat, tbl := ids.New(), ids.New(), ids.New()
		h := memHierarchy{
			ms:  {ID: ms, Type: "METASTORE", Owner: "root"},
			cat: {ID: cat, Type: "CATALOG", Parent: ms, Owner: "root"},
			tbl: {ID: tbl, Type: "TABLE", Parent: cat, Owner: "root"},
		}
		all := []ids.ID{ms, cat, tbl}
		g := NewMemStore()
		eng := NewEngine(h, g, nil)
		var grants []Grant
		for i := 0; i < 6; i++ {
			gr := Grant{Securable: all[rng.Intn(len(all))], Principal: people[rng.Intn(len(people))], Privilege: privs[rng.Intn(len(privs))]}
			g.Add(gr)
			grants = append(grants, gr)
		}
		type key struct {
			p    Principal
			priv Privilege
			sec  ids.ID
		}
		before := map[key]bool{}
		for _, p := range people {
			for _, pr := range privs {
				for _, sec := range all {
					before[key{p, pr, sec}] = eng.Check(p, pr, sec).Allowed
				}
			}
		}
		victim := grants[rng.Intn(len(grants))]
		g.Remove(victim.Securable, victim.Principal, victim.Privilege)
		for k, wasAllowed := range before {
			if !wasAllowed && eng.Check(k.p, k.priv, k.sec).Allowed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
