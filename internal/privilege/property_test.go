package privilege

import (
	"math/rand"
	"testing"
	"testing/quick"

	"unitycatalog/internal/ids"
)

// TestQuickGrantMonotonicity property-tests a core soundness property of
// the privilege model: adding grants never revokes access. For any random
// hierarchy, grant set, and check, if a principal is allowed, they remain
// allowed after any additional grant is added anywhere.
func TestQuickGrantMonotonicity(t *testing.T) {
	privs := []Privilege{Select, Modify, UseCatalog, UseSchema, Execute, Manage}
	people := []Principal{"a", "b", "c"}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build a metastore -> catalog -> schema -> table chain plus a
		// sibling table.
		ms, cat, sch, t1, t2 := ids.New(), ids.New(), ids.New(), ids.New(), ids.New()
		h := memHierarchy{
			ms:  {ID: ms, Type: "METASTORE", Owner: "root"},
			cat: {ID: cat, Type: "CATALOG", Parent: ms, Owner: "root"},
			sch: {ID: sch, Type: "SCHEMA", Parent: cat, Owner: "root"},
			t1:  {ID: t1, Type: "TABLE", Parent: sch, Owner: "root"},
			t2:  {ID: t2, Type: "TABLE", Parent: sch, Owner: "root"},
		}
		all := []ids.ID{ms, cat, sch, t1, t2}
		g := NewMemStore()
		eng := NewEngine(h, g, nil)

		// Random initial grants.
		for i := 0; i < rng.Intn(8); i++ {
			g.Add(Grant{
				Securable: all[rng.Intn(len(all))],
				Principal: people[rng.Intn(len(people))],
				Privilege: privs[rng.Intn(len(privs))],
			})
		}
		// Record every (principal, privilege, securable) decision.
		type key struct {
			p    Principal
			priv Privilege
			sec  ids.ID
		}
		before := map[key]bool{}
		for _, p := range people {
			for _, pr := range privs {
				for _, sec := range all {
					before[key{p, pr, sec}] = eng.Check(p, pr, sec).Allowed
				}
			}
		}
		// Add one more random grant.
		g.Add(Grant{
			Securable: all[rng.Intn(len(all))],
			Principal: people[rng.Intn(len(people))],
			Privilege: privs[rng.Intn(len(privs))],
		})
		// Nothing that was allowed may become denied.
		for k, wasAllowed := range before {
			if wasAllowed && !eng.Check(k.p, k.priv, k.sec).Allowed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randomWorld builds a randomized securable forest with random types,
// owners, groups, and grants. With small probability a node's parent is an
// ID absent from the hierarchy, exercising the broken-hierarchy paths.
func randomWorld(rng *rand.Rand) (memHierarchy, *MemStore, memGroups, []ids.ID) {
	people := []Principal{"u1", "u2", "u3", "g1", "g2", "root"}
	types := []string{"CATALOG", "SCHEMA", "TABLE", "VOLUME"}
	privs := []Privilege{Select, Modify, UseCatalog, UseSchema, CreateTable, Manage, AllPrivileges}

	h := memHierarchy{}
	root := ids.New()
	h[root] = Securable{ID: root, Type: "METASTORE", Owner: people[rng.Intn(len(people))]}
	all := []ids.ID{root}
	n := 6 + rng.Intn(6)
	for i := 0; i < n; i++ {
		id := ids.New()
		parent := all[rng.Intn(len(all))]
		if rng.Intn(10) == 0 {
			parent = ids.New() // dangling parent: broken hierarchy
		}
		h[id] = Securable{
			ID:     id,
			Type:   types[rng.Intn(len(types))],
			Parent: parent,
			Owner:  people[rng.Intn(len(people))],
		}
		all = append(all, id)
	}

	g := NewMemStore()
	for i := 0; i < rng.Intn(16); i++ {
		g.Add(Grant{
			Securable: all[rng.Intn(len(all))],
			Principal: people[rng.Intn(len(people))],
			Privilege: privs[rng.Intn(len(privs))],
		})
	}

	groups := memGroups{}
	for _, u := range []Principal{"u1", "u2", "u3"} {
		var ms []Principal
		for _, grp := range []Principal{"g1", "g2"} {
			if rng.Intn(2) == 0 {
				ms = append(ms, grp)
			}
		}
		groups[u] = ms
	}
	return h, g, groups, all
}

// TestDifferentialCompiledVsNaive is the equivalence proof for the compiled
// fast path: over randomized worlds (hierarchies, types, owners, groups,
// grants, broken parents), the compiled engine must agree with the naive
// reference engine on the full Decision — allowed bit AND reason string —
// for Check and CheckNoGate, and on IsOwner, EffectivePrivileges,
// EffectiveSet, and CheckMany, for every (principal, privilege, securable)
// triple including an unknown securable. It also re-queries through the
// same snapshot (rebound once) to prove memoized answers don't drift.
func TestDifferentialCompiledVsNaive(t *testing.T) {
	privs := []Privilege{Select, Modify, UseCatalog, UseSchema, CreateTable, Manage, AllPrivileges}
	users := []Principal{"u1", "u2", "u3", "g1", "root", "nobody"}

	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h, g, groups, all := randomWorld(rng)
		secs := append(append([]ids.ID{}, all...), ids.New()) // plus one unknown
		eng := NewEngine(h, g, groups)

		for _, p := range users {
			naive := eng.For(p)
			snap := NewSnapshot(p, groups)
			// Two binds of one snapshot: the second pass answers purely from
			// memos compiled during the first.
			for pass := 0; pass < 2; pass++ {
				comp := snap.Bind(h, g)
				for _, sec := range secs {
					for _, priv := range privs {
						if nd, cd := naive.Check(priv, sec), comp.Check(priv, sec); nd != cd {
							t.Fatalf("seed %d pass %d: Check(%s, %s, %s): naive %+v, compiled %+v", seed, pass, p, priv, sec.Short(), nd, cd)
						}
						if nd, cd := naive.CheckNoGate(priv, sec), comp.CheckNoGate(priv, sec); nd != cd {
							t.Fatalf("seed %d pass %d: CheckNoGate(%s, %s, %s): naive %+v, compiled %+v", seed, pass, p, priv, sec.Short(), nd, cd)
						}
					}
					if no, co := naive.IsOwner(sec), comp.IsOwner(sec); no != co {
						t.Fatalf("seed %d pass %d: IsOwner(%s, %s): naive %v, compiled %v", seed, pass, p, sec.Short(), no, co)
					}
					ne, ce := naive.EffectivePrivileges(sec), comp.EffectivePrivileges(sec)
					if len(ne) != len(ce) {
						t.Fatalf("seed %d pass %d: EffectivePrivileges(%s, %s): naive %v, compiled %v", seed, pass, p, sec.Short(), ne, ce)
					}
					for i := range ne {
						if ne[i] != ce[i] {
							t.Fatalf("seed %d pass %d: EffectivePrivileges(%s, %s): naive %v, compiled %v", seed, pass, p, sec.Short(), ne, ce)
						}
					}
					if ns, nok := naive.EffectiveSet(sec); true {
						cs, cok := comp.EffectiveSet(sec)
						if ns != cs || nok != cok {
							t.Fatalf("seed %d pass %d: EffectiveSet(%s, %s): naive %b/%v, compiled %b/%v", seed, pass, p, sec.Short(), ns, nok, cs, cok)
						}
					}
				}
				for _, priv := range privs {
					nm, cm := naive.CheckMany(priv, secs), comp.CheckMany(priv, secs)
					for i := range nm {
						if nm[i] != cm[i] {
							t.Fatalf("seed %d pass %d: CheckMany(%s, %s)[%d]: naive %+v, compiled %+v", seed, pass, p, priv, i, nm[i], cm[i])
						}
					}
				}
			}
		}
	}
}

// TestQuickRevokeNeverExpands is the dual: removing a grant never grants
// anyone new access.
func TestQuickRevokeNeverExpands(t *testing.T) {
	privs := []Privilege{Select, Modify, UseCatalog, UseSchema}
	people := []Principal{"a", "b"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ms, cat, tbl := ids.New(), ids.New(), ids.New()
		h := memHierarchy{
			ms:  {ID: ms, Type: "METASTORE", Owner: "root"},
			cat: {ID: cat, Type: "CATALOG", Parent: ms, Owner: "root"},
			tbl: {ID: tbl, Type: "TABLE", Parent: cat, Owner: "root"},
		}
		all := []ids.ID{ms, cat, tbl}
		g := NewMemStore()
		eng := NewEngine(h, g, nil)
		var grants []Grant
		for i := 0; i < 6; i++ {
			gr := Grant{Securable: all[rng.Intn(len(all))], Principal: people[rng.Intn(len(people))], Privilege: privs[rng.Intn(len(privs))]}
			g.Add(gr)
			grants = append(grants, gr)
		}
		type key struct {
			p    Principal
			priv Privilege
			sec  ids.ID
		}
		before := map[key]bool{}
		for _, p := range people {
			for _, pr := range privs {
				for _, sec := range all {
					before[key{p, pr, sec}] = eng.Check(p, pr, sec).Allowed
				}
			}
		}
		victim := grants[rng.Intn(len(grants))]
		g.Remove(victim.Securable, victim.Principal, victim.Privilege)
		for k, wasAllowed := range before {
			if !wasAllowed && eng.Check(k.p, k.priv, k.sec).Allowed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
