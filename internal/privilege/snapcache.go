package privilege

import (
	"hash/maphash"
	"sync"
	"time"

	"unitycatalog/internal/obs"
)

// SnapshotCache keeps compiled Snapshots across requests, keyed by
// (scope, principal) and version-stamped. A lookup hits only when the
// caller's current metadata version matches the cached entry's, so bumping
// the version on any grant/hierarchy write invalidates every snapshot in
// that scope for free — there is no invalidation traffic, just misses that
// rebuild against the new version.
//
// Group membership is compiled into a snapshot but group changes do not
// bump metadata versions, so entries additionally expire after MaxAge —
// the same bounded-staleness contract the directory's group cache already
// provides (its TTL bounds how stale a membership read can be; this TTL
// bounds how long a snapshot can keep using one).
//
// The cache is lock-striped into 32 shards by key hash with per-shard LRU
// eviction, and counts hits/misses/builds/invalidations/evictions on
// atomics so concurrent checks never serialize on metrics (PR 1's cache
// discipline).

const snapShardCount = 32

// SnapshotCacheMetrics is a point-in-time copy of the cache counters.
type SnapshotCacheMetrics struct {
	Hits   int64
	Misses int64
	// Builds counts snapshot compilations, including transient ones that
	// were never stored (stale-view requests racing a newer cached entry).
	Builds int64
	// Invalidations counts misses where a snapshot for the key existed but
	// was compiled against a different version (version-keyed invalidation).
	Invalidations int64
	// Expirations counts misses where the entry's version matched but the
	// snapshot had outlived MaxAge (group-closure staleness bound).
	Expirations int64
	Evictions   int64
	Entries     int64
}

// SnapshotCacheOptions tunes the cache; zero values select the defaults.
type SnapshotCacheOptions struct {
	// MaxEntries caps the number of cached snapshots across all shards
	// (approximately — eviction is per shard). Default 4096.
	MaxEntries int
	// MaxAge bounds how long a snapshot's compiled group closure may be
	// reused. Default 30s, matching the directory's group-cache TTL.
	MaxAge time.Duration
}

type snapKey struct {
	scope     string
	principal Principal
}

type snapEntry struct {
	version  uint64
	snap     *Snapshot
	built    time.Time
	lastUsed int64 // unix nanoseconds, guarded by the shard lock
}

type snapShard struct {
	mu      sync.Mutex
	entries map[snapKey]*snapEntry
}

// SnapshotCache is safe for concurrent use.
type SnapshotCache struct {
	opts   SnapshotCacheOptions
	seed   maphash.Seed
	shards [snapShardCount]snapShard
	now    func() time.Time // test hook

	hits          obs.Counter
	misses        obs.Counter
	builds        obs.Counter
	invalidations obs.Counter
	expirations   obs.Counter
	evictions     obs.Counter
	entries       obs.Gauge
}

// NewSnapshotCache builds an empty cache.
func NewSnapshotCache(opts SnapshotCacheOptions) *SnapshotCache {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 4096
	}
	if opts.MaxAge <= 0 {
		opts.MaxAge = 30 * time.Second
	}
	c := &SnapshotCache{opts: opts, seed: maphash.MakeSeed(), now: time.Now}
	for i := range c.shards {
		c.shards[i].entries = map[snapKey]*snapEntry{}
	}
	return c
}

func (c *SnapshotCache) shardFor(k snapKey) *snapShard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(k.scope)
	h.WriteByte(0)
	h.WriteString(string(k.principal))
	return &c.shards[h.Sum64()%snapShardCount]
}

// Snapshot returns the compiled snapshot for (scope, principal) at version,
// building it via groups on a miss. Scope names the metadata domain the
// version belongs to (for the catalog service, the metastore ID).
//
// If the cache holds a *newer* version than requested — a request pinned to
// a stale view racing writers — the entry is left in place and a transient
// snapshot is compiled for the caller without being stored, so slow readers
// can never roll the cache backwards.
func (c *SnapshotCache) Snapshot(scope string, p Principal, version uint64, groups GroupResolver) *Snapshot {
	return c.SnapshotT(obs.SpanContext{}, scope, p, version, groups)
}

// SnapshotT is Snapshot with a trace context: a cache miss records an
// "authz.build" span covering the snapshot compilation (group-closure
// expansion). Hits record nothing — they are the per-decision hot path.
func (c *SnapshotCache) SnapshotT(sc obs.SpanContext, scope string, p Principal, version uint64, groups GroupResolver) *Snapshot {
	key := snapKey{scope: scope, principal: p}
	sh := c.shardFor(key)
	now := c.now()

	sh.mu.Lock()
	e, ok := sh.entries[key]
	if ok && e.version == version && now.Sub(e.built) < c.opts.MaxAge {
		e.lastUsed = now.UnixNano()
		snap := e.snap
		sh.mu.Unlock()
		c.hits.Add(1)
		return snap
	}
	stale := ok && e.version > version
	sh.mu.Unlock()

	c.misses.Add(1)
	switch {
	case ok && e.version != version:
		c.invalidations.Add(1)
	case ok:
		c.expirations.Add(1)
	}

	// Compile outside the shard lock: group resolution may be slow, and
	// holding the lock would serialize unrelated principals on this shard.
	_, buildSpan := sc.StartDetail("authz.build", string(p))
	snap := NewSnapshot(p, groups)
	buildSpan.End()
	c.builds.Add(1)
	if stale {
		return snap
	}

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur, exists := sh.entries[key]; exists {
		if cur.version > version {
			return snap // a newer snapshot landed while we compiled
		}
		if cur.version == version && now.Sub(cur.built) < c.opts.MaxAge {
			cur.lastUsed = now.UnixNano()
			return cur.snap // a concurrent miss beat us; share its memos
		}
	} else {
		c.entries.Add(1)
	}
	sh.entries[key] = &snapEntry{version: version, snap: snap, built: now, lastUsed: now.UnixNano()}
	c.evictLocked(sh, key)
	return snap
}

// evictLocked drops the least-recently-used entry in sh (sparing keep) when
// the global count exceeds the cap. Per-shard eviction with a global
// counter is approximate but never deadlocks or takes two shard locks.
func (c *SnapshotCache) evictLocked(sh *snapShard, keep snapKey) {
	if int(c.entries.Load()) <= c.opts.MaxEntries {
		return
	}
	var victim snapKey
	var oldest int64
	found := false
	for k, e := range sh.entries {
		if k == keep {
			continue
		}
		if !found || e.lastUsed < oldest {
			victim, oldest, found = k, e.lastUsed, true
		}
	}
	if found {
		delete(sh.entries, victim)
		c.entries.Add(-1)
		c.evictions.Add(1)
	}
}

// RegisterMetrics exposes the snapshot-cache counters on r. Call once per
// registry per cache.
func (c *SnapshotCache) RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("uc_authz_snapshot_hits_total", "Compiled-snapshot cache hits.", &c.hits)
	r.RegisterCounter("uc_authz_snapshot_misses_total", "Compiled-snapshot cache misses.", &c.misses)
	r.RegisterCounter("uc_authz_snapshot_builds_total", "Snapshot compilations (incl. transient).", &c.builds)
	r.RegisterCounter("uc_authz_snapshot_invalidations_total", "Misses caused by version-keyed invalidation.", &c.invalidations)
	r.RegisterCounter("uc_authz_snapshot_expirations_total", "Misses caused by the group-closure TTL.", &c.expirations)
	r.RegisterCounter("uc_authz_snapshot_evictions_total", "Snapshots evicted by the LRU cap.", &c.evictions)
	r.RegisterGauge("uc_authz_snapshot_entries", "Cached compiled snapshots.", &c.entries)
}

// Metrics returns a copy of the counters.
func (c *SnapshotCache) Metrics() SnapshotCacheMetrics {
	return SnapshotCacheMetrics{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Builds:        c.builds.Load(),
		Invalidations: c.invalidations.Load(),
		Expirations:   c.expirations.Load(),
		Evictions:     c.evictions.Load(),
		Entries:       c.entries.Load(),
	}
}
