package privilege

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unitycatalog/internal/ids"
)

func TestSnapshotCacheVersionKeying(t *testing.T) {
	c := NewSnapshotCache(SnapshotCacheOptions{})
	groups := memGroups{"alice": {"team"}}

	s1 := c.Snapshot("ms", "alice", 1, groups)
	if s1.Principal() != "alice" {
		t.Fatalf("principal = %s", s1.Principal())
	}
	if s2 := c.Snapshot("ms", "alice", 1, groups); s2 != s1 {
		t.Fatal("same version did not hit")
	}
	// Version bump invalidates: new snapshot, invalidation counted.
	s3 := c.Snapshot("ms", "alice", 2, groups)
	if s3 == s1 {
		t.Fatal("version bump returned stale snapshot")
	}
	// A stale-view request must not roll the cache back to version 1.
	s4 := c.Snapshot("ms", "alice", 1, groups)
	if s4 == s1 || s4 == s3 {
		t.Fatal("stale request returned cached snapshot")
	}
	if s5 := c.Snapshot("ms", "alice", 2, groups); s5 != s3 {
		t.Fatal("stale request evicted the newer snapshot")
	}
	// Different principals and scopes are distinct keys.
	if sb := c.Snapshot("ms", "bob", 2, groups); sb == s3 {
		t.Fatal("principal collision")
	}
	if so := c.Snapshot("other", "alice", 2, groups); so == s3 {
		t.Fatal("scope collision")
	}

	m := c.Metrics()
	// Invalidations: the version bump (1→2) and the stale-view request
	// (2→1) are both version mismatches.
	if m.Hits != 2 || m.Misses != 5 || m.Builds != 5 || m.Invalidations != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Entries != 3 {
		t.Fatalf("entries = %d", m.Entries)
	}
}

func TestSnapshotCacheMaxAge(t *testing.T) {
	c := NewSnapshotCache(SnapshotCacheOptions{MaxAge: time.Minute})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	s1 := c.Snapshot("ms", "alice", 7, nil)
	now = now.Add(59 * time.Second)
	if s2 := c.Snapshot("ms", "alice", 7, nil); s2 != s1 {
		t.Fatal("unexpired entry missed")
	}
	now = now.Add(2 * time.Second)
	s3 := c.Snapshot("ms", "alice", 7, nil)
	if s3 == s1 {
		t.Fatal("expired snapshot reused past MaxAge")
	}
	m := c.Metrics()
	if m.Expirations != 1 {
		t.Fatalf("expirations = %d", m.Expirations)
	}
	// The rebuilt entry replaced the expired one under the same key.
	if m.Entries != 1 {
		t.Fatalf("entries = %d", m.Entries)
	}
}

func TestSnapshotCacheEviction(t *testing.T) {
	c := NewSnapshotCache(SnapshotCacheOptions{MaxEntries: 8})
	for i := 0; i < 64; i++ {
		c.Snapshot("ms", Principal(fmt.Sprintf("p%d", i)), 1, nil)
	}
	m := c.Metrics()
	if m.Evictions == 0 {
		t.Fatal("no evictions at 8x over cap")
	}
	// Per-shard eviction is approximate; allow slack of one entry per shard.
	if m.Entries > int64(8+snapShardCount) {
		t.Fatalf("entries = %d, cap 8", m.Entries)
	}
}

// TestSnapshotCacheStress hammers the cache under -race: concurrent checks
// across principals and scopes interleaved with version bumps (grant
// mutations) and membership-affecting rebuilds. Snapshots obtained from the
// cache are used for real decisions while other goroutines rebuild them.
func TestSnapshotCacheStress(t *testing.T) {
	h, g, groups, leaf := deepFixture(4)
	c := NewSnapshotCache(SnapshotCacheOptions{MaxEntries: 16})
	var version atomic.Uint64
	version.Store(1)

	principals := []Principal{"alice", "root", "nobody", "team"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scope := fmt.Sprintf("ms%d", w%2)
			for i := 0; i < 400; i++ {
				p := principals[(w+i)%len(principals)]
				snap := c.Snapshot(scope, p, version.Load(), groups)
				eng := snap.Bind(h, g)
				eng.Check(Select, leaf)
				eng.CheckMany(UseSchema, []ids.ID{leaf})
				eng.IsOwner(leaf)
				eng.EffectiveSet(leaf)
				if i%17 == 0 {
					version.Add(1) // a write bumped the metadata version
				}
			}
		}(w)
	}
	wg.Wait()

	m := c.Metrics()
	if m.Hits+m.Misses != 8*400 {
		t.Fatalf("lookups = %d, want %d (metrics %+v)", m.Hits+m.Misses, 8*400, m)
	}
	if m.Builds != m.Misses {
		t.Fatalf("builds %d != misses %d", m.Builds, m.Misses)
	}
}
