// Package retry implements capped exponential backoff with deterministic
// jitter and typed error classification, shared by every retrying client in
// the control plane: the HTTP SDK, the Delta log commit loop, and STS
// credential minting.
//
// The design goals, in order:
//
//   - correctness: callers declare which errors are retryable for *their*
//     operation (a non-idempotent POST must not retry a Timeout, while a
//     Throttled rejection is always safe to retry);
//   - server cooperation: errors carrying a Retry-After hint (the faults
//     package's Throttled/Unavailable, or an HTTP 429/503 response) extend
//     the computed backoff rather than being ignored;
//   - determinism: jitter derives from a caller-provided seed, so tests and
//     chaos runs replay identically; and
//   - testability: sleeping is injectable, so unit tests run in microseconds
//     and fake-clock harnesses can observe the chosen delays.
package retry

import (
	"errors"
	"math/rand"
	"time"

	"unitycatalog/internal/faults"
)

// Policy configures a retry loop. The zero value is usable and means:
// 4 attempts, 10ms base delay doubling to a 1s cap, jitter seeded from 1,
// real sleeping.
type Policy struct {
	// MaxAttempts is the total number of tries, including the first
	// (0 = default 4). 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (0 = default 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 = default 1s).
	MaxDelay time.Duration
	// Multiplier grows the backoff per attempt (0 = default 2).
	Multiplier float64
	// Seed makes the jitter sequence deterministic (0 = default 1).
	Seed int64
	// Sleep is the delay function (nil = time.Sleep). Tests inject a
	// recorder; fake-clock harnesses inject clock advancement.
	Sleep func(time.Duration)
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Backoff returns the pre-jitter delay before retry number attempt (0-based).
func (p Policy) Backoff(attempt int) time.Duration {
	p = p.withDefaults()
	d := float64(p.BaseDelay)
	for i := 0; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			return p.MaxDelay
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	return time.Duration(d)
}

// RetryAfterHinter is implemented by errors that carry a server-suggested
// pause (faults.Error, the client's APIError).
type RetryAfterHinter interface {
	RetryAfterHint() (time.Duration, bool)
}

// RetryAfter extracts a retry-after hint from err, unwrapping as needed.
func RetryAfter(err error) (time.Duration, bool) {
	var h RetryAfterHinter
	if errors.As(err, &h) {
		return h.RetryAfterHint()
	}
	return 0, false
}

// Retryable is the default classifier: injected faults of every class are
// retryable (callers with non-idempotent operations must use a stricter
// classifier), anything else is not.
func Retryable(err error) bool {
	return faults.IsFault(err)
}

// RetryableIdempotentOnly classifies faults as retryable except Timeout,
// whose outcome is unknown — the classifier for non-idempotent operations.
func RetryableIdempotentOnly(err error) bool {
	c, ok := faults.ClassOf(err)
	return ok && c != faults.Timeout
}

// Do runs fn up to p.MaxAttempts times, sleeping a jittered capped
// exponential backoff between attempts, extended by any Retry-After hint on
// the error. It returns nil on the first success, the last error when
// attempts are exhausted, and immediately propagates errors the classifier
// rejects.
func Do(p Policy, retryable func(error) bool, fn func() error) error {
	_, err := DoValue(p, retryable, func() (struct{}, error) { return struct{}{}, fn() })
	return err
}

// DoValue is Do for functions returning a value.
func DoValue[T any](p Policy, retryable func(error) bool, fn func() (T, error)) (T, error) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	var zero T
	var err error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		var v T
		v, err = fn()
		if err == nil {
			return v, nil
		}
		if !retryable(err) {
			return zero, err
		}
		if attempt == p.MaxAttempts-1 {
			break
		}
		d := p.Backoff(attempt)
		// Deterministic jitter in [d/2, d): decorrelates a thundering herd
		// without ever exceeding the cap.
		if half := int64(d / 2); half > 0 {
			d = d/2 + time.Duration(rng.Int63n(half))
		}
		if hint, ok := RetryAfter(err); ok && hint > d {
			d = hint
		}
		p.Sleep(d)
	}
	return zero, err
}
