package retry

import (
	"errors"
	"testing"
	"time"

	"unitycatalog/internal/faults"
)

func noSleep(rec *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *rec = append(*rec, d) }
}

func TestDoSucceedsAfterTransients(t *testing.T) {
	var slept []time.Duration
	calls := 0
	err := Do(Policy{MaxAttempts: 5, Sleep: noSleep(&slept)}, Retryable, func() error {
		calls++
		if calls < 3 {
			return &faults.Error{Class: faults.Transient, Op: "get"}
		}
		return nil
	})
	if err != nil || calls != 3 || len(slept) != 2 {
		t.Fatalf("err=%v calls=%d slept=%v", err, calls, slept)
	}
}

func TestDoStopsOnNonRetryable(t *testing.T) {
	boom := errors.New("permanent")
	calls := 0
	err := Do(Policy{Sleep: func(time.Duration) {}}, Retryable, func() error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Do(Policy{MaxAttempts: 3, Sleep: func(time.Duration) {}}, Retryable, func() error {
		calls++
		return &faults.Error{Class: faults.Unavailable}
	})
	if !faults.Is(err, faults.Unavailable) || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestBackoffCappedExponential(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 60 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{10, 20, 40, 60, 60}
	for i, w := range want {
		if got := p.Backoff(i); got != w*time.Millisecond {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	run := func() []time.Duration {
		var slept []time.Duration
		Do(Policy{MaxAttempts: 6, Seed: 99, Sleep: noSleep(&slept)}, Retryable, func() error {
			return &faults.Error{Class: faults.Transient}
		})
		return slept
	}
	a, b := run(), run()
	if len(a) != 5 {
		t.Fatalf("slept %d times", len(a))
	}
	p := Policy{}.withDefaults()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not deterministic: %v vs %v", a, b)
		}
		base := p.Backoff(i)
		if a[i] < base/2 || a[i] >= base {
			t.Fatalf("delay %d = %v outside [%v, %v)", i, a[i], base/2, base)
		}
	}
}

func TestRetryAfterHintExtendsDelay(t *testing.T) {
	var slept []time.Duration
	hint := 500 * time.Millisecond
	calls := 0
	Do(Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, Sleep: noSleep(&slept)}, Retryable, func() error {
		calls++
		return &faults.Error{Class: faults.Throttled, RetryAfter: hint}
	})
	if len(slept) != 1 || slept[0] < hint {
		t.Fatalf("retry-after not honored: %v", slept)
	}
}

func TestIdempotentOnlyClassifier(t *testing.T) {
	if RetryableIdempotentOnly(&faults.Error{Class: faults.Timeout}) {
		t.Fatal("timeout must not be retryable for non-idempotent ops")
	}
	if !RetryableIdempotentOnly(&faults.Error{Class: faults.Throttled}) {
		t.Fatal("throttled is always retryable")
	}
	if RetryableIdempotentOnly(errors.New("other")) {
		t.Fatal("unclassified errors are not retryable")
	}
}

func TestDoValueReturnsValue(t *testing.T) {
	calls := 0
	v, err := DoValue(Policy{Sleep: func(time.Duration) {}}, Retryable, func() (int, error) {
		calls++
		if calls == 1 {
			return 0, &faults.Error{Class: faults.Transient}
		}
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("v=%d err=%v", v, err)
	}
}
