// Package search implements the discovery-catalog search service (paper
// §4.4): an inverted index over asset names, comments, and tags, kept fresh
// by consuming the core service's change-event stream rather than polling,
// with query-time authorization filtering through the core authorization
// API.
package search

import (
	"sort"
	"strings"
	"sync"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/erm"
	"unitycatalog/internal/events"
	"unitycatalog/internal/ids"
)

// doc is one indexed asset.
type doc struct {
	ID       ids.ID
	FullName string
	Type     string
	Tokens   map[string]bool
}

// Service is the search index.
type Service struct {
	core *catalog.Service

	mu    sync.RWMutex
	docs  map[ids.ID]*doc
	index map[string]map[ids.ID]bool // token -> posting set

	sub     *events.Subscription
	stopped chan struct{}

	// Reindexed counts full rebuilds (after event loss).
	Reindexed int
}

// New starts a search service subscribed to the core's change events and
// primes the index from the current catalog state.
func New(core *catalog.Service) *Service {
	s := &Service{
		core:    core,
		docs:    map[ids.ID]*doc{},
		index:   map[string]map[ids.ID]bool{},
		sub:     core.Bus().Subscribe(),
		stopped: make(chan struct{}),
	}
	s.Reindex()
	go s.consume()
	return s
}

// Close stops event consumption.
func (s *Service) Close() {
	s.sub.Cancel()
	<-s.stopped
}

func (s *Service) consume() {
	defer close(s.stopped)
	for e := range s.sub.C {
		if s.sub.Dropped() > 0 {
			// Event loss: rebuild everything, as the paper's design allows.
			s.Reindex()
			continue
		}
		switch e.Op {
		case events.OpCreate, events.OpUpdate, events.OpTag:
			s.indexAsset(e.Metastore, e.EntityID)
		case events.OpDelete:
			s.remove(e.EntityID)
		}
	}
}

// Reindex rebuilds the index from every attached metastore.
func (s *Service) Reindex() {
	s.mu.Lock()
	s.docs = map[ids.ID]*doc{}
	s.index = map[string]map[ids.ID]bool{}
	s.Reindexed++
	s.mu.Unlock()
	for _, msID := range s.core.Metastores() {
		for _, e := range s.core.AllEntities(msID) {
			s.indexEntity(msID, e)
		}
	}
}

func (s *Service) indexAsset(msID string, id ids.ID) {
	if id == ids.Nil {
		return
	}
	e, err := s.core.GetEntityByID(msID, id)
	if err != nil {
		return
	}
	s.indexEntity(msID, e)
}

func (s *Service) indexEntity(msID string, e *erm.Entity) {
	if e.State == erm.StateSoftDeleted {
		s.remove(e.ID)
		return
	}
	tokens := map[string]bool{}
	for _, tok := range Tokenize(e.Name + " " + e.FullName + " " + e.Comment) {
		tokens[tok] = true
	}
	tags, colTags := s.core.TagsByID(msID, e.ID)
	for k, v := range tags {
		tokens[strings.ToLower(k)] = true
		tokens[strings.ToLower(v)] = true
		tokens[strings.ToLower(k+":"+v)] = true
	}
	for _, ct := range colTags {
		for k, v := range ct {
			tokens[strings.ToLower(k)] = true
			tokens[strings.ToLower(v)] = true
			tokens[strings.ToLower(k+":"+v)] = true
		}
	}
	d := &doc{ID: e.ID, FullName: e.FullName, Type: string(e.Type), Tokens: tokens}

	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.docs[e.ID]; ok {
		for tok := range old.Tokens {
			delete(s.index[tok], e.ID)
		}
	}
	s.docs[e.ID] = d
	for tok := range tokens {
		set, ok := s.index[tok]
		if !ok {
			set = map[ids.ID]bool{}
			s.index[tok] = set
		}
		set[e.ID] = true
	}
}

func (s *Service) remove(id ids.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.docs[id]
	if !ok {
		return
	}
	for tok := range old.Tokens {
		delete(s.index[tok], id)
	}
	delete(s.docs, id)
}

// Tokenize lowercases and splits text into index tokens, including dotted
// name components.
func Tokenize(text string) []string {
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		switch r {
		case ' ', '\t', '\n', '.', '/', '-', '_', ',', '(', ')':
			return true
		}
		return false
	})
	seen := map[string]bool{}
	var out []string
	for _, f := range fields {
		if f == "" || seen[f] {
			continue
		}
		seen[f] = true
		out = append(out, f)
	}
	return out
}

// Result is one search hit.
type Result struct {
	ID       ids.ID `json:"id"`
	FullName string `json:"full_name"`
	Type     string `json:"type"`
	Score    int    `json:"score"` // matched terms
}

// Search finds assets matching all query terms (AND semantics; a term also
// matches tag key:value pairs), filtered to assets the principal may see,
// returning up to limit results (0 = 50).
func (s *Service) Search(ctx catalog.Ctx, query string, limit int) ([]Result, error) {
	if limit <= 0 {
		limit = 50
	}
	terms := Tokenize(query)
	if len(terms) == 0 {
		return nil, nil
	}
	s.mu.RLock()
	// Intersect postings, starting from the rarest term.
	sort.Slice(terms, func(i, j int) bool { return len(s.index[terms[i]]) < len(s.index[terms[j]]) })
	var candidates []ids.ID
	for id := range s.index[terms[0]] {
		match := true
		for _, t := range terms[1:] {
			if !s.index[t][id] {
				match = false
				break
			}
		}
		if match {
			candidates = append(candidates, id)
		}
	}
	results := make([]Result, 0, len(candidates))
	for _, id := range candidates {
		d := s.docs[id]
		results = append(results, Result{ID: id, FullName: d.FullName, Type: d.Type, Score: len(terms)})
	}
	s.mu.RUnlock()

	// Authorization filtering via the core's batch API.
	idList := make([]ids.ID, len(results))
	for i, r := range results {
		idList[i] = r.ID
	}
	allowed, err := s.core.AuthorizeBatch(ctx, idList, "")
	if err != nil {
		return nil, err
	}
	out := results[:0]
	for i, r := range results {
		if allowed[i] {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName < out[j].FullName })
	if len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// DocCount reports how many assets are indexed.
func (s *Service) DocCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}
