package search

import (
	"testing"
	"time"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/privilege"
	"unitycatalog/internal/store"
)

func setup(t *testing.T) (*catalog.Service, *Service, catalog.Ctx) {
	t.Helper()
	db, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	svc, err := catalog.New(catalog.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	svc.CreateMetastore("ms1", "main", "r", "admin", "s3://root/ms1")
	admin := catalog.Ctx{Principal: "admin", Metastore: "ms1"}
	svc.CreateCatalog(admin, "sales", "revenue data")
	svc.CreateSchema(admin, "sales", "raw", "")
	svc.CreateTable(admin, "sales.raw", "orders", catalog.TableSpec{Columns: []catalog.ColumnInfo{{Name: "id", Type: "BIGINT"}, {Name: "ssn", Type: "STRING"}}}, "")
	svc.CreateTable(admin, "sales.raw", "customers", catalog.TableSpec{Columns: []catalog.ColumnInfo{{Name: "id", Type: "BIGINT"}}}, "")
	s := New(svc)
	t.Cleanup(s.Close)
	return svc, s, admin
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !cond() {
		t.Fatal("condition not reached")
	}
}

func TestInitialIndexAndSearch(t *testing.T) {
	_, s, admin := setup(t)
	if s.DocCount() < 4 {
		t.Fatalf("docs = %d", s.DocCount())
	}
	res, err := s.Search(admin, "orders", 0)
	if err != nil || len(res) != 1 || res[0].FullName != "sales.raw.orders" {
		t.Fatalf("search = %v, %v", res, err)
	}
	// Multi-term AND.
	res, _ = s.Search(admin, "sales customers", 0)
	if len(res) != 1 || res[0].FullName != "sales.raw.customers" {
		t.Fatalf("multi-term = %v", res)
	}
	// Comment tokens match the catalog.
	res, _ = s.Search(admin, "revenue", 0)
	if len(res) != 1 || res[0].FullName != "sales" {
		t.Fatalf("comment search = %v", res)
	}
	if res, _ := s.Search(admin, "", 0); res != nil {
		t.Fatalf("empty query = %v", res)
	}
}

func TestEventDrivenIndexUpdates(t *testing.T) {
	svc, s, admin := setup(t)
	svc.CreateTable(admin, "sales.raw", "refunds", catalog.TableSpec{Columns: []catalog.ColumnInfo{{Name: "id", Type: "BIGINT"}}}, "")
	waitFor(t, func() bool {
		res, _ := s.Search(admin, "refunds", 0)
		return len(res) == 1
	})
	// Deletion removes from the index.
	svc.DeleteAsset(admin, "sales.raw.refunds", false)
	waitFor(t, func() bool {
		res, _ := s.Search(admin, "refunds", 0)
		return len(res) == 0
	})
}

func TestTagSearch(t *testing.T) {
	svc, s, admin := setup(t)
	if err := svc.SetTag(admin, "sales.raw.orders", "ssn", "classification", "pii"); err != nil {
		t.Fatal(err)
	}
	// The paper's canonical discovery query: find all assets tagged PII.
	waitFor(t, func() bool {
		res, _ := s.Search(admin, "pii", 0)
		return len(res) == 1 && res[0].FullName == "sales.raw.orders"
	})
	// key:value search.
	res, _ := s.Search(admin, "classification:pii", 0)
	if len(res) != 1 {
		t.Fatalf("kv search = %v", res)
	}
}

func TestSearchAuthorizationFiltering(t *testing.T) {
	svc, s, admin := setup(t)
	svc.Grant(admin, "sales", "alice", privilege.UseCatalog)
	svc.Grant(admin, "sales.raw", "alice", privilege.UseSchema)
	svc.Grant(admin, "sales.raw.customers", "alice", privilege.Select)
	alice := catalog.Ctx{Principal: "alice", Metastore: "ms1"}
	res, err := s.Search(alice, "raw", 0)
	if err != nil {
		t.Fatal(err)
	}
	// alice sees the schema (usage) and customers, but not orders.
	for _, r := range res {
		if r.FullName == "sales.raw.orders" {
			t.Fatalf("alice sees %v", res)
		}
	}
	// Nobody principal sees nothing.
	res, _ = s.Search(catalog.Ctx{Principal: "nobody", Metastore: "ms1"}, "orders", 0)
	if len(res) != 0 {
		t.Fatalf("nobody sees %v", res)
	}
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("Sales.raw.Order_Items (PII)")
	want := map[string]bool{"sales": true, "raw": true, "order": true, "items": true, "pii": true}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for _, tok := range toks {
		if !want[tok] {
			t.Fatalf("unexpected token %q", tok)
		}
	}
}
