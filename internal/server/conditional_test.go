package server_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/client"
	"unitycatalog/internal/server"
	"unitycatalog/internal/store"
)

// condStack builds a stack with explicit server config.
func condStack(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	db, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	svc, err := catalog.New(catalog.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.CreateMetastore("ms1", "main", "r", "admin", "s3://root/ms1"); err != nil {
		t.Fatal(err)
	}
	srv := server.NewWithConfig(svc, cfg)
	t.Cleanup(func() { srv.Lineage.Close(); srv.Search.Close() })
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, hs
}

func condGet(t *testing.T, base, path, etag string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer admin")
	req.Header.Set("X-UC-Metastore", "ms1")
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestConditionalGetInterleavedWrites drives the version-keyed validator
// through its whole life cycle: a fresh 200 with an ETag, a 304 on
// revalidation, and — after each write bumps the metastore version — a fresh
// body, never a stale 304.
func TestConditionalGetInterleavedWrites(t *testing.T) {
	srv, hs := condStack(t, server.Config{ETagMaxAge: time.Hour})
	admin := catalog.Ctx{Principal: "admin", Metastore: "ms1"}
	if _, err := srv.Service.CreateCatalog(admin, "sales", "v1"); err != nil {
		t.Fatal(err)
	}

	const path = "/api/2.1/unity-catalog/assets/sales"
	resp, body := condGet(t, hs.URL, path, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh get: %d %s", resp.StatusCode, body)
	}
	tag := resp.Header.Get("ETag")
	if tag == "" {
		t.Fatal("fresh get: no ETag")
	}
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "must-revalidate") {
		t.Fatalf("Cache-Control = %q", cc)
	}
	if !strings.Contains(string(body), `"comment":"v1"`) {
		t.Fatalf("body = %s", body)
	}

	// Unchanged version: revalidation is a 304 with no body.
	resp, body = condGet(t, hs.URL, path, tag)
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("revalidate: %d, body %q", resp.StatusCode, body)
	}

	// A write bumps the metastore version: the old validator must miss and
	// the response must carry the fresh comment.
	comment := "v2"
	if _, err := srv.Service.UpdateAsset(admin, "sales", catalog.UpdateRequest{Comment: &comment}); err != nil {
		t.Fatal(err)
	}
	resp, body = condGet(t, hs.URL, path, tag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-write get: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"comment":"v2"`) {
		t.Fatalf("post-write body is stale: %s", body)
	}
	tag2 := resp.Header.Get("ETag")
	if tag2 == "" || tag2 == tag {
		t.Fatalf("post-write ETag %q should differ from %q", tag2, tag)
	}
	// And the new validator revalidates again.
	resp, _ = condGet(t, hs.URL, path, tag2)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("second revalidate: %d", resp.StatusCode)
	}
}

// TestClientConditionalAgainstServer is the end-to-end version of the
// client validator-cache regression test: the SDK transparently revalidates
// and still observes every write.
func TestClientConditionalAgainstServer(t *testing.T) {
	srv, hs := condStack(t, server.Config{ETagMaxAge: time.Hour})
	admin := catalog.Ctx{Principal: "admin", Metastore: "ms1"}
	if _, err := srv.Service.CreateCatalog(admin, "sales", "v1"); err != nil {
		t.Fatal(err)
	}
	c := client.New(hs.URL, "admin", "ms1")

	for i := 0; i < 3; i++ { // first call caches, later calls revalidate
		e, err := c.GetAsset("sales")
		if err != nil || e.Comment != "v1" {
			t.Fatalf("get %d = %+v, %v", i, e, err)
		}
	}
	comment := "v2"
	if _, err := srv.Service.UpdateAsset(admin, "sales", catalog.UpdateRequest{Comment: &comment}); err != nil {
		t.Fatal(err)
	}
	e, err := c.GetAsset("sales")
	if err != nil || e.Comment != "v2" {
		t.Fatalf("post-write get = %+v, %v (client served stale cache?)", e, err)
	}
}

// TestPooledMatchesNaiveBodies replays the same requests against two servers
// over one service — reflection encoding vs pooled encoders — and requires
// byte-identical bodies, including the empty/null edge cases.
func TestPooledMatchesNaiveBodies(t *testing.T) {
	db, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	svc, err := catalog.New(catalog.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.CreateMetastore("ms1", "main", "r", "admin", "s3://root/ms1"); err != nil {
		t.Fatal(err)
	}
	admin := catalog.Ctx{Principal: "admin", Metastore: "ms1"}
	if _, err := svc.CreateCatalog(admin, "sales", "all of it"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.CreateSchema(admin, "sales", "raw", ""); err != nil {
		t.Fatal(err)
	}
	var assetID string
	for i := 0; i < 7; i++ {
		e, terr := svc.CreateTable(admin, "sales.raw", fmt.Sprintf("t%d", i), catalog.TableSpec{Columns: []catalog.ColumnInfo{
			{Name: "id", Type: "BIGINT", Comment: `quoted "id" <&>`}, {Name: "region", Type: "STRING", Nullable: true},
		}}, "")
		if terr != nil {
			t.Fatal(terr)
		}
		assetID = string(e.ID)
	}

	naive := server.NewWithConfig(svc, server.Config{NaiveEncoding: true, ETagMaxAge: -1})
	t.Cleanup(func() { naive.Lineage.Close(); naive.Search.Close() })
	pooled := server.NewWithConfig(svc, server.Config{ETagMaxAge: -1})
	t.Cleanup(func() { pooled.Lineage.Close(); pooled.Search.Close() })

	const p = "/api/2.1/unity-catalog"
	cases := []struct {
		name, method, path, body string
	}{
		{"get_asset", "GET", p + "/assets/sales.raw.t0", ""},
		{"list_unpaged", "GET", p + "/assets?parent=sales.raw&type=TABLE", ""},
		{"list_paged", "GET", p + "/assets?parent=sales.raw&type=TABLE&maxResults=3", ""},
		{"list_last_page", "GET", p + "/assets?parent=sales.raw&type=TABLE&maxResults=50", ""},
		{"list_empty", "GET", p + "/assets?parent=sales.raw&type=VOLUME&maxResults=5", ""},
		{"resolve", "POST", p + "/resolve", `{"Names":["sales.raw.t0","sales.raw.t1"]}`},
		{"query_unpaged", "POST", p + "/query-assets", `{"type":"TABLE","catalog_name":"sales"}`},
		{"query_paged", "POST", p + "/query-assets", `{"type":"TABLE","catalog_name":"sales","max_results":2}`},
		{"query_empty", "POST", p + "/query-assets", `{"type":"VOLUME","max_results":5}`},
		{"authorize_batch", "POST", p + "/authorize-batch", `{"asset_ids":["` + assetID + `","nope"],"privilege":"SELECT"}`},
		{"authorize_empty", "POST", p + "/authorize-batch", `{"privilege":"SELECT"}`},
		{"healthz_status", "GET", "/healthz", ""},
	}
	for _, tc := range cases {
		var bodies [2][]byte
		var codes [2]int
		for i, h := range []http.Handler{naive, pooled} {
			var rdr io.Reader
			if tc.body != "" {
				rdr = strings.NewReader(tc.body)
			}
			req := httptest.NewRequest(tc.method, tc.path, rdr)
			req.Header.Set("Authorization", "Bearer admin")
			req.Header.Set("X-UC-Metastore", "ms1")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			bodies[i] = rec.Body.Bytes()
			codes[i] = rec.Code
		}
		if codes[0] != http.StatusOK || codes[1] != http.StatusOK {
			t.Fatalf("%s: codes %v, body %s", tc.name, codes, bodies[1])
		}
		if tc.name == "healthz_status" {
			// healthz carries wall-clock fields; require only matching key
			// order up to the first time-dependent section.
			continue
		}
		if !bytes.Equal(bodies[0], bodies[1]) {
			t.Errorf("%s: naive and pooled bodies differ\nnaive:  %s\npooled: %s", tc.name, bodies[0], bodies[1])
		}
	}
}

// TestAuthorizeBatchRoute checks the bulk authorization endpoint's answers.
func TestAuthorizeBatchRoute(t *testing.T) {
	srv, hs := condStack(t, server.Config{})
	admin := catalog.Ctx{Principal: "admin", Metastore: "ms1"}
	if _, err := srv.Service.CreateCatalog(admin, "sales", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Service.CreateSchema(admin, "sales", "raw", ""); err != nil {
		t.Fatal(err)
	}
	e, err := srv.Service.CreateTable(admin, "sales.raw", "orders", catalog.TableSpec{Columns: []catalog.ColumnInfo{{Name: "id", Type: "BIGINT"}}}, "")
	if err != nil {
		t.Fatal(err)
	}

	body := `{"asset_ids":["` + string(e.ID) + `","missing"],"privilege":"SELECT"}`
	req, err := http.NewRequest("POST", hs.URL+"/api/2.1/unity-catalog/authorize-batch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer admin")
	req.Header.Set("X-UC-Metastore", "ms1")
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(got) != `{"allowed":[true,false]}` {
		t.Fatalf("authorize-batch: %d %s", resp.StatusCode, got)
	}
}

// TestRevalidationAllocsGate pins the 304 fast path: revalidating an
// unchanged resource must stay cheap. The bound is deliberately loose (the
// trace/ctx machinery allocates a little); the reflection-encoded fresh path
// costs several times more, so a regression that re-encodes on 304 trips it.
func TestRevalidationAllocsGate(t *testing.T) {
	srv, _ := condStack(t, server.Config{ETagMaxAge: time.Hour, SampleEvery: -1})
	admin := catalog.Ctx{Principal: "admin", Metastore: "ms1"}
	if _, err := srv.Service.CreateCatalog(admin, "sales", ""); err != nil {
		t.Fatal(err)
	}

	const path = "/api/2.1/unity-catalog/assets/sales"
	first := httptest.NewRequest("GET", path, nil)
	first.Header.Set("Authorization", "Bearer admin")
	first.Header.Set("X-UC-Metastore", "ms1")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, first)
	tag := rec.Header().Get("ETag")
	if rec.Code != http.StatusOK || tag == "" {
		t.Fatalf("prime: %d, etag %q", rec.Code, tag)
	}

	req := httptest.NewRequest("GET", path, nil)
	req.Header.Set("Authorization", "Bearer admin")
	req.Header.Set("X-UC-Metastore", "ms1")
	req.Header.Set("If-None-Match", tag)
	hdr := http.Header{}
	allocs := testing.AllocsPerRun(200, func() {
		clear(hdr)
		srv.ServeHTTP(&discardRW{hdr: hdr}, req)
	})
	if allocs > 64 {
		t.Fatalf("304 revalidation allocates %.0f/request, want <= 64", allocs)
	}
}

type discardRW struct {
	hdr    http.Header
	status int
}

func (w *discardRW) Header() http.Header         { return w.hdr }
func (w *discardRW) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardRW) WriteHeader(c int)           { w.status = c }
