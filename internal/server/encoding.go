package server

// Response encoding for the HTTP front end. Hot routes (resolve,
// authorize-batch, temp-credentials, get-asset, list/query pages, healthz)
// encode through internal/jsonenc's pooled append-style encoders — zero
// allocations in steady state, byte-identical to encoding/json — while the
// long tail keeps the generic reflection path. Config.NaiveEncoding forces
// the generic path everywhere, as the ablation baseline for bench-http.
//
// All paths marshal the full body before touching the response header, so an
// encoding failure becomes a clean 500 (counted by uc_http_encode_errors and
// surfaced in the access log) instead of a 200 with a truncated body, and
// every response carries Content-Length.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/erm"
	"unitycatalog/internal/jsonenc"
)

// sendJSON writes a fully encoded JSON body with Content-Length.
func sendJSON(w http.ResponseWriter, status int, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body)
}

// sendPooled writes the buffer's contents and returns it to the pool.
func sendPooled(w http.ResponseWriter, status int, buf *jsonenc.Buffer) {
	sendJSON(w, status, buf.B)
	jsonenc.Put(buf)
}

// writeJSON is the generic response writer for the non-hot routes.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		encodeFail(w, err)
		return
	}
	sendJSON(w, status, b)
}

// encodeFail reports a response-encoding failure as a 500 with an error
// body, records the cause for the access log, and bumps
// uc_http_encode_errors.
func encodeFail(w http.ResponseWriter, err error) {
	err = fmt.Errorf("response encoding failed: %w", err)
	if sw, ok := w.(*statusWriter); ok {
		sw.err = err
		if sw.srv != nil {
			sw.srv.encodeErrors.Inc()
		}
	}
	b, _ := json.Marshal(errorBody{Error: err.Error(), Code: http.StatusInternalServerError})
	sendJSON(w, http.StatusInternalServerError, b)
}

func readJSON(r *http.Request, v any) error {
	_, err := readJSONHash(r, v)
	return err
}

// readJSONHash decodes the request body into v (unknown fields rejected,
// like readJSON always has) and returns the FNV-1a hash of the raw bytes,
// which conditional POST routes fold into their cache validator. The body is
// staged through a pooled buffer so the read itself does not allocate in
// steady state.
func readJSONHash(r *http.Request, v any) (uint64, error) {
	buf := jsonenc.Get()
	defer jsonenc.Put(buf)
	b := buf.B
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Body.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("%w: bad request body: %v", catalog.ErrInvalidArgument, err)
		}
	}
	buf.B = b
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return 0, fmt.Errorf("%w: bad request body: %v", catalog.ErrInvalidArgument, err)
	}
	return fnv1a(b), nil
}

// fnv1a is the 64-bit FNV-1a hash, inlined to stay allocation-free.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// appendEntities appends a []*erm.Entity array (nil emits null, matching
// encoding/json on a nil slice).
func appendEntities(dst []byte, es []*erm.Entity) []byte {
	if es == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i, e := range es {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = jsonenc.AppendEntity(dst, e)
	}
	return append(dst, ']')
}

// assetStream builds a {"assets":[...],"nextPageToken":...} body
// element-by-element as the keyset scan emits entities, so paginated
// responses never materialize a page slice. With zero emissions the assets
// field is null, matching the naive encoding of a nil slice.
type assetStream struct {
	buf *jsonenc.Buffer
	n   int
}

func newAssetStream() *assetStream {
	b := jsonenc.Get()
	b.B = append(b.B, `{"assets":`...)
	return &assetStream{buf: b}
}

func (as *assetStream) emit(e *erm.Entity) {
	if as.n == 0 {
		as.buf.B = append(as.buf.B, '[')
	} else {
		as.buf.B = append(as.buf.B, ',')
	}
	as.buf.B = jsonenc.AppendEntity(as.buf.B, e)
	as.n++
}

// finish closes the body, appending the continuation token when present, and
// returns the complete response bytes (still owned by the stream's buffer).
func (as *assetStream) finish(next string) []byte {
	if as.n == 0 {
		as.buf.B = append(as.buf.B, "null"...)
	} else {
		as.buf.B = append(as.buf.B, ']')
	}
	if next != "" {
		as.buf.B = append(as.buf.B, `,"nextPageToken":`...)
		as.buf.B = jsonenc.AppendString(as.buf.B, next)
	}
	as.buf.B = append(as.buf.B, '}')
	return as.buf.B
}

func (as *assetStream) close() {
	jsonenc.Put(as.buf)
	as.buf = nil
}

// appendHealthz encodes the healthz body. The wal and authz sections carry
// Go field names (their structs have no json tags); the differential test
// keeps this in lockstep with encoding/json.
func appendHealthz(dst []byte, h *healthzResponse) []byte {
	dst = append(dst, `{"status":`...)
	dst = jsonenc.AppendString(dst, h.Status)
	dst = append(dst, `,"degraded":{"cache":`...)
	dst = jsonenc.AppendBool(dst, h.Degraded.Cache)
	dst = append(dst, `,"wal":`...)
	dst = jsonenc.AppendBool(dst, h.Degraded.WAL)
	dst = append(dst, `},"wal":{"Batches":`...)
	dst = jsonenc.AppendInt(dst, h.WAL.Batches)
	dst = append(dst, `,"Entries":`...)
	dst = jsonenc.AppendInt(dst, h.WAL.Entries)
	dst = append(dst, `,"Syncs":`...)
	dst = jsonenc.AppendInt(dst, h.WAL.Syncs)
	dst = append(dst, `,"MaxBatch":`...)
	dst = jsonenc.AppendInt(dst, h.WAL.MaxBatch)
	dst = append(dst, `},"cache":`...)
	if h.Cache == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range h.Cache {
			if i > 0 {
				dst = append(dst, ',')
			}
			mh := &h.Cache[i]
			dst = append(dst, `{"metastore_id":`...)
			dst = jsonenc.AppendString(dst, mh.MetastoreID)
			dst = append(dst, `,"degraded":`...)
			dst = jsonenc.AppendBool(dst, mh.Degraded)
			dst = append(dst, `,"known_version":`...)
			dst = jsonenc.AppendUint(dst, mh.KnownVersion)
			dst = append(dst, `,"since_last_sync":`...)
			dst = jsonenc.AppendInt(dst, int64(mh.SinceLastSync))
			dst = append(dst, `,"entries":`...)
			dst = jsonenc.AppendInt(dst, mh.Entries)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"authz":{"Hits":`...)
	dst = jsonenc.AppendInt(dst, h.Authz.Hits)
	dst = append(dst, `,"Misses":`...)
	dst = jsonenc.AppendInt(dst, h.Authz.Misses)
	dst = append(dst, `,"Builds":`...)
	dst = jsonenc.AppendInt(dst, h.Authz.Builds)
	dst = append(dst, `,"Invalidations":`...)
	dst = jsonenc.AppendInt(dst, h.Authz.Invalidations)
	dst = append(dst, `,"Expirations":`...)
	dst = jsonenc.AppendInt(dst, h.Authz.Expirations)
	dst = append(dst, `,"Evictions":`...)
	dst = jsonenc.AppendInt(dst, h.Authz.Evictions)
	dst = append(dst, `,"Entries":`...)
	dst = jsonenc.AppendInt(dst, h.Authz.Entries)
	return append(dst, "}}"...)
}
