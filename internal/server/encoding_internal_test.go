package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"unitycatalog/internal/cache"
	"unitycatalog/internal/catalog"
	"unitycatalog/internal/erm"
	"unitycatalog/internal/jsonenc"
	"unitycatalog/internal/privilege"
	"unitycatalog/internal/store"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	db, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	svc, err := catalog.New(catalog.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(svc, Config{})
	t.Cleanup(func() { s.Lineage.Close(); s.Search.Close() })
	return s
}

// TestAppendHealthzMatchesJSON pins the hand-written healthz encoder to the
// reflection encoding of the same struct, byte for byte.
func TestAppendHealthzMatchesJSON(t *testing.T) {
	cases := []healthzResponse{
		{Status: "ok"},
		{
			Status:   "degraded",
			Degraded: healthzDegraded{Cache: true, WAL: true},
			WAL:      store.WALStats{Batches: 12, Entries: 340, Syncs: 11, MaxBatch: 64},
			Cache: []cache.MetastoreHealth{
				{MetastoreID: "ms1", Degraded: true, KnownVersion: 42, SinceLastSync: 1500 * time.Millisecond, Entries: 7},
				{MetastoreID: "ms2", KnownVersion: 1, Entries: 0},
			},
			Authz: privilege.SnapshotCacheMetrics{Hits: 9, Misses: 2, Builds: 3, Invalidations: 1, Expirations: 4, Evictions: 5, Entries: 6},
		},
	}
	for i, resp := range cases {
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		got := appendHealthz(nil, &resp)
		if !bytes.Equal(got, want) {
			t.Errorf("case %d:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestAssetStreamMatchesJSON pins the streaming page envelope to the map
// encoding the naive path produces ("assets" sorts before "nextPageToken").
func TestAssetStreamMatchesJSON(t *testing.T) {
	ts := time.Date(2026, 8, 1, 10, 0, 0, 0, time.UTC)
	ents := []*erm.Entity{
		{ID: "id-1", Type: erm.TypeTable, Name: "t1", FullName: "c.s.t1", Owner: "admin", State: erm.StateActive, CreatedAt: ts, UpdatedAt: ts},
		{ID: "id-2", Type: erm.TypeTable, Name: "t2", FullName: "c.s.t2", Owner: "admin", Comment: `with "quotes" <&>`, State: erm.StateActive, CreatedAt: ts, UpdatedAt: ts},
	}
	cases := []struct {
		name string
		emit []*erm.Entity
		next string
	}{
		{"empty", nil, ""},
		{"page", ents, ""},
		{"page_with_token", ents, "c.s.t2"},
	}
	for _, tc := range cases {
		st := newAssetStream()
		for _, e := range tc.emit {
			st.emit(e)
		}
		got := append([]byte(nil), st.finish(tc.next)...)
		st.close()

		naive := map[string]any{"assets": tc.emit}
		if tc.next != "" {
			naive["nextPageToken"] = tc.next
		}
		want, err := json.Marshal(naive)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s:\n got %s\nwant %s", tc.name, got, want)
		}
	}
}

// TestWriteJSONSurfacesEncodeErrors: an unencodable body must become a 500
// with an error body, set the access-log error, and bump the counter —
// not a 200 with half a payload.
func TestWriteJSONSurfacesEncodeErrors(t *testing.T) {
	s := newTestServer(t)
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec, srv: s, status: 200}

	writeJSON(sw, 200, math.NaN()) // json.Marshal rejects NaN

	if rec.Code != 500 {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if sw.err == nil {
		t.Fatal("statusWriter.err not set: access log would miss the failure")
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Code != 500 {
		t.Fatalf("error body = %s (%v)", rec.Body.Bytes(), err)
	}
	if n := s.encodeErrors.Load(); n != 1 {
		t.Fatalf("uc_http_encode_errors = %d, want 1", n)
	}

	// The happy path must not touch the counter.
	writeJSON(&statusWriter{ResponseWriter: httptest.NewRecorder(), srv: s, status: 200}, 200, map[string]int{"ok": 1})
	if n := s.encodeErrors.Load(); n != 1 {
		t.Fatalf("counter moved on success: %d", n)
	}
}

func TestEtagMatch(t *testing.T) {
	cases := []struct {
		header, tag string
		want        bool
	}{
		{`"v1-a-b"`, `"v1-a-b"`, true},
		{`"v1-a-b"`, `"v2-a-b"`, false},
		{`W/"v1-a-b"`, `"v1-a-b"`, true},
		{`"x", "v1-a-b"`, `"v1-a-b"`, true},
		{`*`, `"anything"`, true},
		{``, `"v1-a-b"`, false},
	}
	for _, tc := range cases {
		if got := etagMatch(tc.header, tc.tag); got != tc.want {
			t.Errorf("etagMatch(%q, %q) = %v, want %v", tc.header, tc.tag, got, tc.want)
		}
	}
}

// TestReadJSONHashStability: the body hash feeding the ETag must be stable
// for identical bodies and distinct for different ones.
func TestReadJSONHashStability(t *testing.T) {
	h1 := fnv1a([]byte(`{"Names":["a"]}`))
	h2 := fnv1a([]byte(`{"Names":["a"]}`))
	h3 := fnv1a([]byte(`{"Names":["b"]}`))
	if h1 != h2 || h1 == h3 {
		t.Fatalf("fnv1a: %x %x %x", h1, h2, h3)
	}
}

// TestPooledEncoderAllocsGate pins the core promise of the jsonenc path:
// encoding an entity into a pooled buffer allocates nothing.
func TestPooledEncoderAllocsGate(t *testing.T) {
	ts := time.Date(2026, 8, 1, 10, 0, 0, 0, time.UTC)
	e := &erm.Entity{ID: "id-1", Type: erm.TypeTable, Name: "t1", FullName: "c.s.t1", Owner: "admin", State: erm.StateActive, CreatedAt: ts, UpdatedAt: ts}
	allocs := testing.AllocsPerRun(200, func() {
		buf := jsonenc.Get()
		buf.B = jsonenc.AppendEntity(buf.B, e)
		jsonenc.Put(buf)
	})
	if allocs != 0 {
		t.Fatalf("pooled entity encode allocates %.1f/op, want 0", allocs)
	}
}
