package server

// Version-keyed conditional GET. The cache layer already tracks each
// metastore's known version, and every metadata write bumps it, so that
// version is a perfect change detector for read responses: as long as it is
// unchanged (and the authz time bucket has not rolled), a repeat of the same
// request by the same principal would produce the same bytes. The server
// therefore stamps an ETag derived from (version, principal, request) on
// cacheable responses and answers If-None-Match revalidations with 304 — no
// service call, no encode work, no body.
//
// Group-membership changes do not bump the metastore version (grants and
// hierarchy changes do), so validators additionally carry a coarse time
// bucket bounded by Config.ETagMaxAge. A revoked group member keeps reading
// cached bodies for at most one bucket — the same staleness contract the
// compiled-authz snapshot TTL already accepts.
//
// Credential-bearing responses are never conditional: vended tokens expire
// on their own clock, independent of the metastore version. Those responses
// are marked Cache-Control: no-store instead.

import (
	"net/http"
	"strconv"
	"strings"
	"time"
)

// etagFor computes the validator for the current request: the metastore
// version in the clear (useful when debugging with curl), then an FNV-1a
// fold of the request identity (principal, metastore, workspace, method,
// path, query, body hash), then the ETagMaxAge time bucket.
func (s *Server) etagFor(version uint64, r *http.Request, bodyHash uint64) string {
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	mix(r.Header.Get("Authorization"))
	mix(r.Header.Get("X-UC-Metastore"))
	mix(r.Header.Get("X-UC-Workspace"))
	mix(r.Method)
	mix(r.URL.Path)
	mix(r.URL.RawQuery)
	h ^= bodyHash
	h *= 1099511628211
	bucket := uint64(time.Now().UnixNano()) / uint64(s.cfg.ETagMaxAge)
	return `"v` + strconv.FormatUint(version, 10) + "-" +
		strconv.FormatUint(h, 36) + "-" + strconv.FormatUint(bucket, 36) + `"`
}

// conditional stamps the current validator onto the response and, when the
// client's If-None-Match still matches it, short-circuits with 304 Not
// Modified (returning true). A 304 implies the client obtained the same
// validator earlier — same principal, same request, same metastore version,
// same time bucket — so skipping the service call cannot leak anything the
// client has not already seen.
func (s *Server) conditional(w http.ResponseWriter, r *http.Request, bodyHash uint64) bool {
	if s.cfg.ETagMaxAge <= 0 {
		return false
	}
	v, err := s.Service.MetastoreVersion(r.Header.Get("X-UC-Metastore"))
	if err != nil {
		return false
	}
	tag := s.etagFor(v, r, bodyHash)
	h := w.Header()
	h.Set("ETag", tag)
	h.Set("Cache-Control", "private, must-revalidate")
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, tag) {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// etagMatch reports whether the If-None-Match header (a comma-separated
// validator list, possibly weak-prefixed or "*") matches tag.
func etagMatch(header, tag string) bool {
	for _, f := range strings.Split(header, ",") {
		f = strings.TrimPrefix(strings.TrimSpace(f), "W/")
		if f == tag || f == "*" {
			return true
		}
	}
	return false
}
