package server

import "net/http"

// WriteErrForTest exposes the error→status mapping to the external test
// package.
func WriteErrForTest(w http.ResponseWriter, err error) { writeErr(w, err) }
