package server_test

import (
	"errors"
	"testing"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/client"
	"unitycatalog/internal/delta"
	"unitycatalog/internal/server"
)

func TestVolumeFilesOverHTTP(t *testing.T) {
	_, _, admin := testStack(t)
	admin.CreateCatalog("c", "")
	admin.CreateSchema("c", "s", "")
	if _, err := admin.CreateAsset(server.CreateAssetRequest{Type: "VOLUME", Name: "landing", ParentFull: "c.s"}); err != nil {
		t.Fatal(err)
	}
	if err := admin.WriteVolumeFile("c.s.landing", "raw/data.csv", []byte("a,b\n1,2")); err != nil {
		t.Fatal(err)
	}
	files, err := admin.ListVolumeFiles("c.s.landing")
	if err != nil || len(files) != 1 || files[0].Name != "raw/data.csv" {
		t.Fatalf("files = %v, %v", files, err)
	}
	data, err := admin.ReadVolumeFile("c.s.landing", "raw/data.csv")
	if err != nil || string(data) != "a,b\n1,2" {
		t.Fatalf("read = %q, %v", data, err)
	}
}

func TestCloneAndRenameOverHTTP(t *testing.T) {
	srv, _, admin := testStack(t)
	admin.CreateCatalog("c", "")
	admin.CreateSchema("c", "s", "")
	tbl, err := admin.CreateTable("c.s", "t", catalog.TableSpec{Columns: []catalog.ColumnInfo{{Name: "id", Type: "BIGINT"}}}, "")
	if err != nil {
		t.Fatal(err)
	}
	schema := delta.Schema{Fields: []delta.SchemaField{{Name: "id", Type: delta.TypeInt64}}}
	dt, err := delta.Create(delta.ServiceBlobs{Store: srv.Service.Cloud()}, tbl.StoragePath, "t", schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := delta.NewBatch(schema)
	for i := 0; i < 5; i++ {
		b.AppendRow(int64(i))
	}
	dt.Append(b)

	clone, err := admin.CloneTable("c.s.t", "c.s", "t_clone")
	if err != nil || clone.FullName != "c.s.t_clone" {
		t.Fatalf("clone = %+v, %v", clone, err)
	}
	renamed, err := admin.RenameAsset("c.s.t_clone", "t_dev")
	if err != nil || renamed.FullName != "c.s.t_dev" {
		t.Fatalf("rename = %+v, %v", renamed, err)
	}
	if _, err := admin.GetAsset("c.s.t_dev"); err != nil {
		t.Fatal(err)
	}
}

func TestWorkspaceBindingsOverHTTP(t *testing.T) {
	_, hs, admin := testStack(t)
	admin.CreateCatalog("bound", "")
	if err := admin.SetWorkspaceBindings("bound", []string{"ws-prod"}); err != nil {
		t.Fatal(err)
	}
	// A client with no workspace header is shut out; the header opens it.
	if _, err := admin.GetAsset("bound"); err == nil {
		t.Fatal("binding should exclude workspace-less client")
	}
	// client doesn't expose a workspace field; set via custom header using
	// a raw request through a second client wrapper is out of scope — use
	// errors.Is to verify the 403 mapping instead.
	var apiErr *client.APIError
	_, err := admin.GetAsset("bound")
	if !errors.As(err, &apiErr) || apiErr.Status != 403 {
		t.Fatalf("binding error = %v", err)
	}
	_ = hs
}
