package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"unitycatalog/internal/cache"
	"unitycatalog/internal/catalog"
	"unitycatalog/internal/client"
	"unitycatalog/internal/cloudsim"
	"unitycatalog/internal/faults"
	"unitycatalog/internal/retry"
	"unitycatalog/internal/server"
	"unitycatalog/internal/store"
)

// faultStack is testStack plus access to the backing DB, so tests can
// inject storage-layer faults as well as front-end ones.
func faultStack(t *testing.T) (*store.DB, *server.Server, *httptest.Server) {
	t.Helper()
	db, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	svc, err := catalog.New(catalog.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.CreateMetastore("ms1", "main", "r", "admin", "s3://root/ms1"); err != nil {
		t.Fatal(err)
	}
	srv := server.New(svc)
	t.Cleanup(func() { srv.Lineage.Close(); srv.Search.Close() })
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return db, srv, hs
}

func rawGet(t *testing.T, hs *httptest.Server, path string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, hs.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer admin")
	req.Header.Set("X-UC-Metastore", "ms1")
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestInjectedFaultStatusMapping: each fault class becomes the HTTP status
// a real overloaded/partitioned service would return, with a Retry-After
// header on the retryable ones (satellite c).
func TestInjectedFaultStatusMapping(t *testing.T) {
	_, srv, hs := faultStack(t)
	cases := []struct {
		class      faults.Class
		retryAfter time.Duration
		status     int
		header     string
	}{
		{faults.Throttled, 2 * time.Second, http.StatusTooManyRequests, "2"},
		{faults.Throttled, 0, http.StatusTooManyRequests, "1"},
		{faults.Unavailable, 5 * time.Second, http.StatusServiceUnavailable, "5"},
		{faults.Transient, 0, http.StatusServiceUnavailable, "1"},
		{faults.Timeout, 0, http.StatusGatewayTimeout, ""},
	}
	for _, tc := range cases {
		inj := faults.New(7)
		inj.AddRule(faults.Rule{Op: "http.GET", Class: tc.class, P: 1, RetryAfter: tc.retryAfter})
		srv.SetFaults(inj)
		resp := rawGet(t, hs, "/api/2.1/unity-catalog/stats")
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != tc.status {
			t.Errorf("%v: status = %d, want %d", tc.class, resp.StatusCode, tc.status)
		}
		if got := resp.Header.Get("Retry-After"); got != tc.header {
			t.Errorf("%v: Retry-After = %q, want %q", tc.class, got, tc.header)
		}
	}
	// Removing the injector restores service.
	srv.SetFaults(nil)
	if resp := rawGet(t, hs, "/api/2.1/unity-catalog/stats"); resp.StatusCode != http.StatusOK {
		t.Fatalf("after clearing injector: %d", resp.StatusCode)
	}
}

// TestHealthzExemptFromFaults: operators must be able to observe a node
// that is rejecting traffic.
func TestHealthzExemptFromFaults(t *testing.T) {
	_, srv, hs := faultStack(t)
	inj := faults.New(1)
	inj.AddRule(faults.Rule{Class: faults.Unavailable, P: 1})
	srv.SetFaults(inj)
	resp := rawGet(t, hs, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during outage: %d", resp.StatusCode)
	}
	if resp := rawGet(t, hs, "/api/2.1/unity-catalog/stats"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("api during outage: %d, want 503", resp.StatusCode)
	}
}

// TestClientRetriesThroughInjectedThrottle: the typed client transparently
// rides out a brief 429 window injected at the server front end.
func TestClientRetriesThroughInjectedThrottle(t *testing.T) {
	_, srv, hs := faultStack(t)
	inj := faults.New(3)
	// A front-end brownout: the first 2 requests are throttled, then the
	// window closes.
	inj.Schedule(faults.Window{Class: faults.Throttled, From: 0, To: 2, RetryAfter: time.Millisecond})
	srv.SetFaults(inj)
	c := client.New(hs.URL, "admin", "ms1")
	c.Retry = retry.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Sleep: func(time.Duration) {}}
	if _, err := c.CreateCatalog("sales", ""); err != nil {
		t.Fatalf("create through throttle window: %v", err)
	}
	if got, err := c.GetAsset("sales"); err != nil || got.FullName != "sales" {
		t.Fatalf("get after window: %v, %v", got, err)
	}
}

// TestHealthzReportsCacheDegradation: a storage outage flips /healthz to
// "degraded" while the process stays alive (HTTP 200), and recovery flips
// it back (tentpole: degraded mode surfaced via health endpoint).
func TestHealthzReportsCacheDegradation(t *testing.T) {
	db, _, hs := faultStack(t)

	var health struct {
		Status string                  `json:"status"`
		Cache  []cache.MetastoreHealth `json:"cache"`
	}
	readHealth := func() {
		t.Helper()
		resp := rawGet(t, hs, "/healthz")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status = %d", resp.StatusCode)
		}
		health.Status, health.Cache = "", nil
		if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
			t.Fatal(err)
		}
	}

	readHealth()
	if health.Status != "ok" || len(health.Cache) == 0 {
		t.Fatalf("initial health = %+v", health)
	}

	// Storage outage: uncached reads now fail with Unavailable.
	inj := faults.New(11)
	inj.AddRule(faults.Rule{Class: faults.Unavailable, P: 1, RetryAfter: time.Second})
	db.SetFaults(inj)
	resp := rawGet(t, hs, "/api/2.1/unity-catalog/assets/no.such.asset")
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode == http.StatusOK {
		t.Fatal("read of unknown asset during outage should not succeed")
	}
	readHealth()
	if health.Status != "degraded" {
		t.Fatalf("health during outage = %+v, want degraded", health)
	}
	degradedSeen := false
	for _, mh := range health.Cache {
		if mh.MetastoreID == "ms1" && mh.Degraded {
			degradedSeen = true
		}
	}
	if !degradedSeen {
		t.Fatalf("per-metastore health missing degraded ms1: %+v", health.Cache)
	}

	// Recovery: the next successful DB read clears the flag.
	db.SetFaults(nil)
	resp = rawGet(t, hs, "/api/2.1/unity-catalog/assets/no.such.asset")
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("after recovery, unknown asset = %d, want 404", resp.StatusCode)
	}
	readHealth()
	if health.Status != "ok" {
		t.Fatalf("health after recovery = %+v, want ok", health)
	}
}

// TestWriteErrCredentialExpiry: expired or invalid storage tokens map to
// 401, distinguishing caller credential problems from server faults.
func TestWriteErrCredentialExpiry(t *testing.T) {
	for _, e := range []error{cloudsim.ErrTokenExpired, cloudsim.ErrTokenInvalid} {
		rec := httptest.NewRecorder()
		server.WriteErrForTest(rec, e)
		if rec.Code != http.StatusUnauthorized {
			t.Errorf("%v: status = %d, want 401", e, rec.Code)
		}
	}
}
