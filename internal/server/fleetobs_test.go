package server_test

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"unitycatalog/internal/audit"
	"unitycatalog/internal/catalog"
	"unitycatalog/internal/client"
	"unitycatalog/internal/faults"
	"unitycatalog/internal/obs"
	"unitycatalog/internal/server"
	"unitycatalog/internal/store"
)

// stackWithConfig is telemetryStack with explicit telemetry settings.
func stackWithConfig(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, *client.Client) {
	t.Helper()
	db, err := store.Open(store.Options{WALPath: t.TempDir() + "/uc.wal"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	svc, err := catalog.New(catalog.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.CreateMetastore("ms1", "main", "r", "admin", "s3://root/ms1"); err != nil {
		t.Fatal(err)
	}
	srv := server.NewWithConfig(svc, cfg)
	t.Cleanup(func() { srv.Close(); srv.Lineage.Close(); srv.Search.Close() })
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, hs, client.New(hs.URL, "admin", "ms1")
}

// --- Prometheus text-exposition conformance ---

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromLabels parses `name="value",...` handling \\, \", and \n escapes.
func parsePromLabels(t *testing.T, s string) map[string]string {
	t.Helper()
	out := map[string]string{}
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			t.Fatalf("label without '=': %q", s[i:])
		}
		name := s[i : i+eq]
		for _, r := range name {
			if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
				t.Fatalf("invalid label name %q", name)
			}
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			t.Fatalf("label value not quoted at %q", s[i:])
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					t.Fatalf("dangling escape in %q", s)
				}
				n := s[i+1]
				if n != '\\' && n != '"' && n != 'n' {
					t.Fatalf("invalid escape \\%c in %q", n, s)
				}
				val.WriteByte(n)
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			if c == '\n' {
				t.Fatalf("raw newline in label value: %q", s)
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			t.Fatalf("unterminated label value in %q", s)
		}
		out[name] = val.String()
		if i < len(s) {
			if s[i] != ',' {
				t.Fatalf("expected ',' between labels at %q", s[i:])
			}
			i++
		}
	}
	return out
}

// parsePromSample parses one non-comment exposition line, accepting an
// OpenMetrics exemplar suffix (` # {trace_id="..."} <value>`) on bucket
// lines and validating it.
func parsePromSample(t *testing.T, line string) promSample {
	t.Helper()
	if idx := strings.Index(line, " # {"); idx >= 0 {
		ex := line[idx+3:]
		line = line[:idx]
		close := strings.Index(ex, "} ")
		if close < 0 {
			t.Fatalf("malformed exemplar %q", ex)
		}
		exLabels := parsePromLabels(t, ex[1:close])
		if exLabels["trace_id"] == "" {
			t.Fatalf("exemplar without trace_id: %q", ex)
		}
		if _, err := strconv.ParseFloat(ex[close+2:], 64); err != nil {
			t.Fatalf("exemplar value %q: %v", ex[close+2:], err)
		}
	}
	var name, rest string
	if b := strings.IndexByte(line, '{'); b >= 0 {
		name = line[:b]
		end := strings.LastIndexByte(line, '}')
		if end < b {
			t.Fatalf("unterminated label set: %q", line)
		}
		s := promSample{name: name, labels: parsePromLabels(t, line[b+1 : end])}
		rest = strings.TrimSpace(line[end+1:])
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("sample value %q in %q: %v", rest, line, err)
		}
		s.value = v
		return s
	}
	sp := strings.IndexByte(line, ' ')
	if sp < 0 {
		t.Fatalf("sample without value: %q", line)
	}
	name, rest = line[:sp], line[sp+1:]
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("sample value %q in %q: %v", rest, line, err)
	}
	return promSample{name: name, labels: map[string]string{}, value: v}
}

// TestPrometheusExpositionConformance parses the FULL /metrics output:
// every family must declare HELP and TYPE before its samples, sample names
// must match the declaring family (histogram families via _bucket/_sum/
// _count), label syntax and escaping must be valid, histogram buckets must
// be cumulative-monotonic with ascending le values, and the +Inf bucket
// must equal _count.
func TestPrometheusExpositionConformance(t *testing.T) {
	srv, hs, c := stackWithConfig(t, server.Config{SampleEvery: 1, SlowThreshold: time.Nanosecond})
	_ = srv
	seedAssets(t, c)
	// A label value that needs escaping, via the audit principal? Simpler:
	// tenant metering picks up this principal with a quote in it.
	evil := client.New(hs.URL, `quo"te\ten`, "ms1")
	_, _ = evil.GetAsset("sales")

	_, body := mustGet(t, hs.URL+"/metrics")
	metricName := func(s string) bool {
		for _, r := range s {
			if !(r == '_' || r == ':' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
				return false
			}
		}
		return s != ""
	}

	type famState struct {
		kind    string
		samples []promSample
	}
	fams := map[string]*famState{}
	var order []string
	helped := map[string]bool{}
	var cur *famState
	var curName string
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || !metricName(parts[0]) || parts[1] == "" {
				t.Fatalf("malformed HELP: %q", line)
			}
			if helped[parts[0]] {
				t.Fatalf("family %s declared HELP twice", parts[0])
			}
			helped[parts[0]] = true
			curName = "" // HELP resets; TYPE must follow before samples
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 || !metricName(parts[0]) {
				t.Fatalf("malformed TYPE: %q", line)
			}
			kind := parts[1]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("invalid TYPE %q for %s", kind, parts[0])
			}
			if !helped[parts[0]] {
				t.Fatalf("TYPE before HELP for %s", parts[0])
			}
			if _, dup := fams[parts[0]]; dup {
				t.Fatalf("family %s declared TYPE twice", parts[0])
			}
			cur = &famState{kind: kind}
			curName = parts[0]
			fams[curName] = cur
			order = append(order, curName)
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		if curName == "" {
			t.Fatalf("sample before any TYPE: %q", line)
		}
		s := parsePromSample(t, line)
		want := s.name == curName
		if cur.kind == "histogram" {
			want = s.name == curName+"_bucket" || s.name == curName+"_sum" || s.name == curName+"_count"
		}
		if !want {
			t.Fatalf("sample %q under family %s (%s)", s.name, curName, cur.kind)
		}
		if math.IsNaN(s.value) || math.IsInf(s.value, 0) {
			t.Fatalf("non-finite value in %q", line)
		}
		if cur.kind == "counter" && s.value < 0 {
			t.Fatalf("negative counter: %q", line)
		}
		cur.samples = append(cur.samples, s)
	}
	if len(order) < 10 {
		t.Fatalf("only %d families parsed — registry not fully covered", len(order))
	}
	for _, name := range []string{"uc_http_requests_total", "uc_http_request_seconds", "uc_tenant_requests_total", "uc_store_commits_total"} {
		if fams[name] == nil {
			t.Fatalf("family %s missing from exposition", name)
		}
	}

	// Histogram invariants per label group.
	for name, f := range fams {
		if f.kind != "histogram" {
			continue
		}
		type group struct {
			les     []float64
			counts  []float64
			count   float64
			hasSum  bool
			hasCnt  bool
			lastInf bool
		}
		groups := map[string]*group{}
		gkey := func(labels map[string]string) string {
			var sb []string
			for k, v := range labels {
				if k != "le" {
					sb = append(sb, k+"="+v)
				}
			}
			// order-independent join
			for i := 0; i < len(sb); i++ {
				for j := i + 1; j < len(sb); j++ {
					if sb[j] < sb[i] {
						sb[i], sb[j] = sb[j], sb[i]
					}
				}
			}
			return strings.Join(sb, ",")
		}
		get := func(k string) *group {
			if groups[k] == nil {
				groups[k] = &group{}
			}
			return groups[k]
		}
		for _, s := range f.samples {
			switch s.name {
			case name + "_bucket":
				le := s.labels["le"]
				if le == "" {
					t.Fatalf("%s bucket without le", name)
				}
				g := get(gkey(s.labels))
				var lv float64
				if le == "+Inf" {
					lv = math.Inf(1)
					g.lastInf = true
				} else {
					var err error
					lv, err = strconv.ParseFloat(le, 64)
					if err != nil {
						t.Fatalf("%s le=%q: %v", name, le, err)
					}
					if g.lastInf {
						t.Fatalf("%s: finite bucket after +Inf", name)
					}
				}
				if n := len(g.les); n > 0 && lv <= g.les[n-1] {
					t.Fatalf("%s: le not ascending (%v after %v)", name, lv, g.les[n-1])
				}
				if n := len(g.counts); n > 0 && s.value < g.counts[n-1] {
					t.Fatalf("%s: bucket counts not monotone (%v after %v)", name, s.value, g.counts[n-1])
				}
				g.les = append(g.les, lv)
				g.counts = append(g.counts, s.value)
			case name + "_sum":
				get(gkey(s.labels)).hasSum = true
			case name + "_count":
				g := get(gkey(s.labels))
				g.hasCnt = true
				g.count = s.value
			}
		}
		for k, g := range groups {
			if !g.lastInf {
				t.Fatalf("%s{%s}: missing +Inf bucket", name, k)
			}
			if !g.hasSum || !g.hasCnt {
				t.Fatalf("%s{%s}: missing _sum or _count", name, k)
			}
			if inf := g.counts[len(g.counts)-1]; inf != g.count {
				t.Fatalf("%s{%s}: +Inf bucket %v != count %v", name, k, inf, g.count)
			}
		}
	}

	// The escaped principal must round-trip through a label value somewhere
	// (tenant metering), proving the escaping path is exercised.
	if !strings.Contains(body, `quo\"te\\ten`) {
		t.Fatalf("escaped label value not found in exposition")
	}
}

// --- cross-node propagation over the HTTP hop ---

// TestServerAdoptsPropagatedTrace: a request carrying propagation headers
// must continue that trace — same ID on the response header, retained as a
// remote segment honoring the origin's sampling decision even though this
// server's own sampler would never retain it, and audit records carrying
// the ORIGIN trace ID.
func TestServerAdoptsPropagatedTrace(t *testing.T) {
	// SampleEvery/SlowThreshold negative: this node retains nothing on its
	// own; only the adopted sampling decision can retain the trace.
	srv, hs, c := stackWithConfig(t, server.Config{SampleEvery: -1, SlowThreshold: -1, Node: "node-b"})
	seedAssets(t, c)

	req, _ := http.NewRequest("GET", hs.URL+"/api/2.1/unity-catalog/assets/sales.raw.orders", nil)
	req.Header.Set("Authorization", "Bearer admin")
	req.Header.Set("X-UC-Metastore", "ms1")
	const originID = "deadbeef00000001"
	req.Header.Set(obs.TraceIDHeader, originID)
	req.Header.Set(obs.ParentSpanHeader, "2")
	req.Header.Set(obs.SampledHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceIDHeader); got != originID {
		t.Fatalf("response trace header %q, want adopted %q", got, originID)
	}
	var sum *obs.TraceSummary
	for _, s := range srv.Tracer().Recent() {
		if s.ID == originID {
			sum = s
		}
	}
	if sum == nil {
		t.Fatalf("adopted trace %s not retained", originID)
	}
	if !sum.Remote || sum.ParentSpan != 2 || sum.Node != "node-b" {
		t.Fatalf("summary = %+v, want remote parent=2 node-b", sum)
	}
	recs := srv.Service.Audit().Filter(func(r audit.Record) bool { return r.TraceID == originID })
	if len(recs) == 0 {
		t.Fatalf("no audit records carry the origin trace ID %s", originID)
	}

	// Unsampled propagation: headers without the sampled flag must adopt
	// the ID (response header) but not retain.
	req2, _ := http.NewRequest("GET", hs.URL+"/api/2.1/unity-catalog/assets/sales.raw.orders", nil)
	req2.Header.Set("Authorization", "Bearer admin")
	req2.Header.Set("X-UC-Metastore", "ms1")
	req2.Header.Set(obs.TraceIDHeader, "deadbeef00000002")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(obs.TraceIDHeader); got != "deadbeef00000002" {
		t.Fatalf("unsampled adoption header = %q", got)
	}
	for _, s := range srv.Tracer().Recent() {
		if s.ID == "deadbeef00000002" {
			t.Fatal("unsampled propagated trace was retained")
		}
	}
}

// TestClientPropagatesTraceAndStitches drives the whole hop through the
// client: an origin tracer shares a store with the server's tracer; the
// client carries the origin's span context; the stitched store shows ONE
// tree with the server's spans grafted under the client's call span.
func TestClientPropagatesTraceAndStitches(t *testing.T) {
	srv, hs, c := stackWithConfig(t, server.Config{SampleEvery: -1, SlowThreshold: -1, Node: "node-remote"})
	seedAssets(t, c)

	shared := obs.NewTraceStore(16)
	srv.Tracer().Store = shared
	origin := obs.NewTracer(1, 0)
	origin.Node = "origin"
	origin.Store = shared

	ot := origin.StartTrace()
	sc, call := origin.Root(ot).Start("engine.resolve")
	c2 := client.New(hs.URL, "admin", "ms1")
	c2.Trace = sc
	// A write reaches the store layer, which records spans (store.commit,
	// store.wal, ...) under the adopted remote trace.
	if _, err := c2.CreateSchema("sales", "stitched", ""); err != nil {
		t.Fatal(err)
	}
	call.End()
	origin.Finish(ot, "engine job")

	var tree *obs.TraceSummary
	for _, s := range shared.Stitched() {
		if s.ID == ot.ID() {
			tree = s
		}
	}
	if tree == nil {
		t.Fatalf("stitched store has no tree for %s", ot.ID())
	}
	if tree.Remote {
		t.Fatal("origin tree marked remote")
	}
	var remote *obs.SpanView
	var under string
	var walk func(spans []obs.SpanView, parent string)
	walk = func(spans []obs.SpanView, parent string) {
		for i := range spans {
			if spans[i].Name == "remote" {
				remote = &spans[i]
				under = parent
			}
			walk(spans[i].Children, spans[i].Name)
		}
	}
	walk(tree.Spans, "")
	if remote == nil {
		t.Fatalf("no remote segment grafted: %+v", tree.Spans)
	}
	if under != "engine.resolve" {
		t.Fatalf("remote grafted under %q, want engine.resolve", under)
	}
	if remote.Node != "node-remote" {
		t.Fatalf("remote node = %q", remote.Node)
	}
	if len(remote.Children) == 0 {
		t.Fatal("remote segment has no server spans")
	}
}

// --- per-tenant metering ---

func TestTenantMeteringEndToEnd(t *testing.T) {
	_, hs, c := stackWithConfig(t, server.Config{SampleEvery: 1, SlowThreshold: time.Nanosecond, TenantTopK: 8})
	seedAssets(t, c)
	analyst := client.New(hs.URL, "analyst", "ms1")
	for i := 0; i < 5; i++ {
		_, _ = analyst.GetAsset("sales") // 403s still consume capacity: metered
	}

	_, body := mustGet(t, hs.URL+"/debug/tenants")
	var dims map[string]struct {
		Total    int64            `json:"total"`
		Residual int64            `json:"residual"`
		Top      []obs.TopKEntry  `json:"top"`
	}
	if err := json.Unmarshal([]byte(body), &dims); err != nil {
		t.Fatalf("/debug/tenants not JSON: %v\n%s", err, body)
	}
	reqs := dims["requests"]
	byKey := map[string]int64{}
	for _, e := range reqs.Top {
		byKey[e.Key] = e.Count
	}
	if byKey["admin"] == 0 || byKey["analyst"] != 5 {
		t.Fatalf("tenant attribution wrong: %+v", reqs.Top)
	}
	if dims["bytes"].Total == 0 || dims["cost_ns"].Total == 0 {
		t.Fatalf("bytes/cost dimensions empty: %s", body)
	}
	if dims["catalog_ops"].Total == 0 {
		t.Fatalf("catalog ops not attributed: %s", body)
	}

	_, metricsBody := mustGet(t, hs.URL+"/metrics")
	for _, want := range []string{
		`uc_tenant_requests_total{tenant="admin"}`,
		`uc_tenant_requests_total{tenant="analyst"} 5`,
		`uc_tenant_requests_total{tenant="_other"}`,
		`uc_tenant_bytes_total{tenant="admin"}`,
		`uc_tenant_cost_seconds_total{tenant="admin"}`,
		`uc_tenant_catalog_ops_total{tenant="admin"}`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// --- flight recorder: fault-injected SLO breach ---

// TestFlightRecorderSLOBreach: healthy traffic, then an injected overload
// degrades the API; the watchdog's windowed per-route p99 breaches the SLO
// budget and the recorder freezes the PRE-incident window — the healthy
// frame and the traces leading up to the breach.
func TestFlightRecorderSLOBreach(t *testing.T) {
	srv, hs, c := stackWithConfig(t, server.Config{
		SampleEvery:   1,
		SlowThreshold: time.Nanosecond,
		SLORouteP99:   time.Nanosecond, // any served request breaches
		FlightFrames:  8,
		FlightTraces:  32,
	})
	seedAssets(t, c)
	// Drain the SLO windows so the seeding traffic doesn't trip the check:
	// rearm after a manual poll.
	srv.Flight().Poll()
	srv.Flight().Rearm()

	// Healthy frame: no API traffic since the last poll, so the window is
	// empty and nothing trips; the frame is captured as pre-incident state.
	_, body := mustGet(t, hs.URL+"/debug/flightrecorder")
	if !strings.Contains(body, `"armed": true`) {
		t.Fatalf("recorder tripped while healthy:\n%s", body)
	}

	// Fault injection: the injector throttles every API request — the
	// degraded traffic is what breaches the (1ns) route budget.
	srv.SetFaults(faults.New(1).AddRule(faults.Rule{Class: faults.Throttled, P: 1, RetryAfter: time.Millisecond}))
	for i := 0; i < 4; i++ {
		if _, err := c.GetAsset("sales.raw.orders"); err == nil {
			t.Fatal("fault injection not active")
		}
	}
	srv.SetFaults(nil)

	_, body = mustGet(t, hs.URL+"/debug/flightrecorder")
	var state struct {
		Armed    bool `json:"armed"`
		Incident *struct {
			Check  string      `json:"check"`
			Reason string      `json:"reason"`
			Frames []obs.Frame `json:"frames"`
			Traces []struct {
				ID string `json:"trace_id"`
				Op string `json:"op"`
			} `json:"traces"`
		} `json:"incident"`
	}
	if err := json.Unmarshal([]byte(body), &state); err != nil {
		t.Fatalf("flightrecorder not JSON: %v\n%s", err, body)
	}
	if state.Armed || state.Incident == nil {
		t.Fatalf("watchdog did not trip:\n%s", body)
	}
	if state.Incident.Check != "slo_route_p99" {
		t.Fatalf("tripped check = %s, want slo_route_p99", state.Incident.Check)
	}
	if !strings.Contains(state.Incident.Reason, "over budget") {
		t.Fatalf("reason %q", state.Incident.Reason)
	}
	// Pre-incident window: the healthy frame precedes the trip frame, and
	// the trace ring holds the requests that led up to the breach.
	if len(state.Incident.Frames) < 2 {
		t.Fatalf("incident kept %d frames, want the healthy pre-incident frame too", len(state.Incident.Frames))
	}
	sawFaulted := false
	for _, tr := range state.Incident.Traces {
		if strings.Contains(tr.Op, "/assets/") && tr.ID != "" {
			sawFaulted = true
		}
	}
	if !sawFaulted {
		t.Fatalf("pre-incident traces missing the degraded requests: %+v", state.Incident.Traces)
	}

	// The incident is frozen: more breaching traffic must not grow it.
	got := len(state.Incident.Frames)
	for i := 0; i < 3; i++ {
		_, _ = c.GetAsset("sales.raw.orders")
	}
	_, body = mustGet(t, hs.URL+"/debug/flightrecorder")
	var again struct {
		Incident *struct {
			Frames []obs.Frame `json:"frames"`
		} `json:"incident"`
	}
	if err := json.Unmarshal([]byte(body), &again); err != nil {
		t.Fatal(err)
	}
	if len(again.Incident.Frames) != got {
		t.Fatalf("incident mutated after freeze: %d -> %d frames", got, len(again.Incident.Frames))
	}
}

// TestDebugEndpointsShape: /debug/tenants and /debug/flightrecorder always
// answer JSON, including on a fresh server with no traffic.
func TestDebugEndpointsShape(t *testing.T) {
	_, hs, _ := stackWithConfig(t, server.Config{})
	for _, p := range []string{"/debug/tenants", "/debug/flightrecorder"} {
		resp, body := mustGet(t, hs.URL+p)
		if resp.StatusCode != 200 {
			t.Fatalf("%s -> %d", p, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Fatalf("%s content-type %q", p, ct)
		}
		var v any
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("%s not JSON: %v", p, err)
		}
	}
	// Metering disabled: endpoint still answers.
	_, hs2, _ := stackWithConfig(t, server.Config{TenantTopK: -1})
	resp, body := mustGet(t, hs2.URL+"/debug/tenants")
	if resp.StatusCode != 200 || strings.TrimSpace(body) != "{}" {
		t.Fatalf("disabled metering: %d %q", resp.StatusCode, body)
	}
}
