package server_test

import (
	"fmt"
	"testing"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/erm"
	"unitycatalog/internal/server"
)

// TestPaginationOverHTTP walks list and query pages end to end through the
// HTTP API and client, checking the paged walk agrees with the unpaged one.
func TestPaginationOverHTTP(t *testing.T) {
	_, _, c := testStack(t)
	if _, err := c.CreateCatalog("sales", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSchema("sales", "raw", ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 23; i++ {
		if _, err := c.CreateTable("sales.raw", fmt.Sprintf("t%02d", i),
			catalog.TableSpec{Columns: []catalog.ColumnInfo{{Name: "a", Type: "STRING"}}}, ""); err != nil {
			t.Fatal(err)
		}
	}

	want, err := c.ListAssets("sales.raw", erm.TypeTable)
	if err != nil {
		t.Fatal(err)
	}

	// Paged listing via maxResults/pageToken query params.
	seen := map[string]bool{}
	token := ""
	pages := 0
	for {
		p, err := c.ListAssetsPage("sales.raw", erm.TypeTable, 5, token)
		if err != nil {
			t.Fatalf("page %d: %v", pages, err)
		}
		if len(p.Assets) > 5 {
			t.Fatalf("page %d has %d assets, cap 5", pages, len(p.Assets))
		}
		for _, e := range p.Assets {
			if seen[e.FullName] {
				t.Fatalf("duplicate %s across pages", e.FullName)
			}
			seen[e.FullName] = true
		}
		pages++
		if p.NextPageToken == "" {
			break
		}
		token = p.NextPageToken
	}
	if len(seen) != len(want) {
		t.Fatalf("paged walk saw %d assets, unpaged %d", len(seen), len(want))
	}
	if pages < 5 {
		t.Fatalf("expected >= 5 pages, got %d", pages)
	}

	// Paged query via POST body max_results/page_token.
	qseen := map[string]bool{}
	req := server.QueryAssetsRequest{CatalogName: "sales", SchemaName: "raw", Type: "TABLE", MaxResults: 7}
	for {
		p, err := c.QueryAssetsPage(req)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range p.Assets {
			if qseen[e.FullName] {
				t.Fatalf("duplicate %s in query pages", e.FullName)
			}
			qseen[e.FullName] = true
		}
		if p.NextPageToken == "" {
			break
		}
		req.PageToken = p.NextPageToken
	}
	if len(qseen) != len(want) {
		t.Fatalf("paged query saw %d assets, want %d", len(qseen), len(want))
	}
}
