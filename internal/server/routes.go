package server

// The route table. Every endpoint declares its pattern, handler, and
// response-path properties in one place instead of ad-hoc HandleFunc calls:
// hot marks routes that encode through the pooled jsonenc fast path (and
// whose allocs/request the telemetry layer samples), conditional marks
// routes that participate in version-keyed conditional GET (etag.go).
// buildMux is a mechanical walk over the table.

import (
	"net/http"

	"unitycatalog/internal/iceberg"
)

// route is one entry of the server's route table.
type route struct {
	pattern     string
	h           http.HandlerFunc
	hot         bool // pooled zero-alloc encoder on the response path
	conditional bool // version-keyed ETag / If-None-Match handling
}

func (s *Server) routes() []route {
	return []route{
		// --- generic asset CRUD ---
		{pattern: "POST " + apiPrefix + "/assets", h: s.handleCreateAsset},
		{pattern: "GET " + apiPrefix + "/assets/{full}", h: s.handleGetAsset, hot: true, conditional: true},
		{pattern: "PATCH " + apiPrefix + "/assets/{full}", h: s.handleUpdateAsset},
		{pattern: "DELETE " + apiPrefix + "/assets/{full}", h: s.handleDeleteAsset},
		{pattern: "GET " + apiPrefix + "/assets", h: s.handleListAssets, hot: true, conditional: true},

		// --- typed conveniences matching the public UC API shape ---
		{pattern: "POST " + apiPrefix + "/catalogs", h: s.handleCreateCatalog},
		{pattern: "GET " + apiPrefix + "/catalogs", h: s.handleListCatalogs},
		{pattern: "POST " + apiPrefix + "/schemas", h: s.handleCreateSchema},
		{pattern: "POST " + apiPrefix + "/tables", h: s.handleCreateTable},

		// --- governance ---
		{pattern: "POST " + apiPrefix + "/grants", h: s.handleGrant},
		{pattern: "DELETE " + apiPrefix + "/grants", h: s.handleRevoke},
		{pattern: "GET " + apiPrefix + "/grants/{full}", h: s.handleGrantsOn},
		{pattern: "GET " + apiPrefix + "/effective-privileges/{full}", h: s.handleEffective},
		{pattern: "POST " + apiPrefix + "/tags", h: s.handleSetTag},
		{pattern: "DELETE " + apiPrefix + "/tags", h: s.handleUnsetTag},
		{pattern: "POST " + apiPrefix + "/abac-rules", h: s.handleCreateABAC},
		{pattern: "GET " + apiPrefix + "/abac-rules", h: s.handleListABAC},
		{pattern: "DELETE " + apiPrefix + "/abac-rules/{id}", h: s.handleDeleteABAC},

		// --- query path ---
		{pattern: "POST " + apiPrefix + "/resolve", h: s.handleResolve, hot: true, conditional: true},
		{pattern: "POST " + apiPrefix + "/authorize-batch", h: s.handleAuthorizeBatch, hot: true, conditional: true},
		{pattern: "POST " + apiPrefix + "/temporary-credentials", h: s.handleTempCredentials, hot: true},

		// --- metadata query / discovery ---
		{pattern: "POST " + apiPrefix + "/query-assets", h: s.handleQueryAssets, hot: true, conditional: true},
		{pattern: "GET " + apiPrefix + "/search", h: s.handleSearch},
		{pattern: "POST " + apiPrefix + "/lineage", h: s.handleSubmitLineage},
		{pattern: "GET " + apiPrefix + "/lineage/{id}", h: s.handleQueryLineage},

		// --- model registry ---
		{pattern: "POST " + apiPrefix + "/models", h: s.handleCreateModel},
		{pattern: "POST " + apiPrefix + "/models/{full}/versions", h: s.handleCreateModelVersion},
		{pattern: "GET " + apiPrefix + "/models/{full}/versions", h: s.handleListModelVersions},
		{pattern: "PATCH " + apiPrefix + "/models/{full}/versions/{version}", h: s.handleFinalizeModelVersion},

		// --- Delta Sharing protocol ---
		{pattern: "GET /delta-sharing/shares", h: s.handleListShares},
		{pattern: "GET /delta-sharing/shares/{share}/schemas", h: s.handleListShareSchemas},
		{pattern: "GET /delta-sharing/shares/{share}/schemas/{schema}/tables", h: s.handleListShareTables},
		{pattern: "GET /delta-sharing/shares/{share}/schemas/{schema}/tables/{table}/query", h: s.handleQueryShareTable},

		// --- Iceberg REST facade, one per metastore path segment ---
		{pattern: "/iceberg/{ms}/", h: s.handleIceberg},

		// --- extended surface: volume files ---
		{pattern: "PUT " + apiPrefix + "/volumes/{full}/files/{name...}", h: s.handlePutVolumeFile},
		{pattern: "GET " + apiPrefix + "/volumes/{full}/files/{name...}", h: s.handleGetVolumeFile},
		{pattern: "DELETE " + apiPrefix + "/volumes/{full}/files/{name...}", h: s.handleDeleteVolumeFile},
		{pattern: "GET " + apiPrefix + "/volumes/{full}/files", h: s.handleListVolumeFiles},

		// --- extended surface: table management ---
		{pattern: "POST " + apiPrefix + "/tables/{full}/clone", h: s.handleCloneTable},
		{pattern: "POST " + apiPrefix + "/assets/{full}/rename", h: s.handleRenameAsset},
		{pattern: "POST " + apiPrefix + "/tables/{full}/optimize", h: s.handleOptimizeTable},

		// --- extended surface: catalog administration ---
		{pattern: "PUT " + apiPrefix + "/catalogs/{name}/workspace-bindings", h: s.handleSetBindings},
		{pattern: "POST " + apiPrefix + "/undelete/{id}", h: s.handleUndelete},
		{pattern: "POST " + apiPrefix + "/gc", h: s.handleGC},

		// --- operational ---
		{pattern: "GET " + apiPrefix + "/stats", h: s.handleStats},
		{pattern: "GET /healthz", h: s.handleHealthz, hot: true},
	}
}

func (s *Server) buildMux() {
	m := http.NewServeMux()
	s.mux = m
	for _, rt := range s.routes() {
		m.HandleFunc(rt.pattern, rt.h)
	}
	s.mountOps(m)
}

func (s *Server) handleIceberg(w http.ResponseWriter, r *http.Request) {
	msID := r.PathValue("ms")
	ice := iceberg.New(s.Service, msID)
	http.StripPrefix("/iceberg/"+msID, ice.Handler()).ServeHTTP(w, r)
}
