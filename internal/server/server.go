// Package server exposes the Unity Catalog service over HTTP — the open
// REST API through which engines, UIs, and external tools integrate
// (paper §4.1). It also mounts the Delta Sharing endpoint, the Iceberg REST
// catalog facade, the model registry, and the discovery APIs (search,
// lineage), mirroring how the Unity Catalog service fronts both the core
// and second-tier capabilities (Figure 3).
//
// Identity model: requests carry "Authorization: Bearer <principal>" and
// "X-UC-Metastore: <id>". An engine is treated as trusted only when its
// principal is registered in the server's trusted-identity set, standing in
// for the machine-identity authentication of §4.3.2.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"unitycatalog/internal/cache"
	"unitycatalog/internal/catalog"
	"unitycatalog/internal/cloudsim"
	"unitycatalog/internal/erm"
	"unitycatalog/internal/faults"
	"unitycatalog/internal/ids"
	"unitycatalog/internal/jsonenc"
	"unitycatalog/internal/lineage"
	"unitycatalog/internal/mlregistry"
	"unitycatalog/internal/obs"
	"unitycatalog/internal/privilege"
	"unitycatalog/internal/retry"
	"unitycatalog/internal/search"
	"unitycatalog/internal/sharing"
	"unitycatalog/internal/store"
)

// Server is the HTTP front end.
type Server struct {
	Service  *catalog.Service
	Sharing  *sharing.Server
	Lineage  *lineage.Service
	Search   *search.Service
	Registry *mlregistry.Registry

	mu      sync.RWMutex
	trusted map[privilege.Principal]bool

	// injector, when set, is consulted before dispatch with the operation
	// "http.<METHOD>" and the request path, modeling an overloaded or
	// partitioned front end; injected faults become 429/503/504 responses.
	injector atomic.Pointer[faults.Injector]

	// Telemetry (see telemetry.go): each server owns a tracer, a metrics
	// registry covering every layer beneath it, and per-route HTTP families.
	cfg          Config
	tracer       *obs.Tracer
	metrics      *obs.Registry
	httpReqs     *obs.CounterVec
	httpSeconds  *obs.HistogramVec
	httpAllocs   *obs.GaugeVec
	encodeErrors *obs.Counter
	allocs       *allocSampler
	tenants      *obs.UsageMeter
	flight       *obs.FlightRecorder
	logMu        sync.Mutex

	mux  *http.ServeMux
	once sync.Once
}

// SetFaults installs (or, with nil, removes) a fault injector in front of
// request dispatch. /healthz is exempt so operators can observe a chaos
// run.
func (s *Server) SetFaults(inj *faults.Injector) { s.injector.Store(inj) }

// New assembles a Server with all subsystems attached and default
// telemetry settings.
func New(svc *catalog.Service) *Server { return NewWithConfig(svc, Config{}) }

// NewWithConfig assembles a Server with explicit telemetry settings.
func NewWithConfig(svc *catalog.Service, cfg Config) *Server {
	s := &Server{
		Service:  svc,
		Sharing:  sharing.NewServer(svc),
		Lineage:  lineage.New(svc),
		Search:   search.New(svc),
		Registry: mlregistry.New(svc),
		trusted:  map[privilege.Principal]bool{},
	}
	s.initTelemetry(cfg)
	return s
}

// TrustEngine registers a machine identity as a trusted engine.
func (s *Server) TrustEngine(p privilege.Principal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trusted[p] = true
}

func (s *Server) isTrusted(p privilege.Principal) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.trusted[p]
}

// ctx extracts the request identity and the request's trace context.
func (s *Server) ctx(r *http.Request) catalog.Ctx {
	p := privilege.Principal(strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer "))
	return catalog.Ctx{
		Principal:     p,
		Metastore:     r.Header.Get("X-UC-Metastore"),
		Workspace:     r.Header.Get("X-UC-Workspace"),
		TrustedEngine: s.isTrusted(p),
		Trace:         obs.SpanFromContext(r.Context()),
	}
}

// ServeHTTP implements http.Handler. Operational endpoints (/healthz,
// /metrics, /debug/*) bypass fault injection and telemetry; everything
// else is traced and measured (telemetry.go).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.once.Do(s.buildMux)
	if opsPath(r.URL.Path) {
		s.mux.ServeHTTP(w, r)
		return
	}
	s.serveTraced(w, r)
}

const apiPrefix = "/api/2.1/unity-catalog"

// healthzResponse is the healthz body: a fixed struct rather than a rebuilt
// map tree, so probes do not allocate shape machinery and the JSON shape is
// pinned at compile time. The wal and authz sections intentionally keep
// their structs' Go field names, as the map encoding always emitted.
type healthzResponse struct {
	Status   string                         `json:"status"`
	Degraded healthzDegraded                `json:"degraded"`
	WAL      store.WALStats                 `json:"wal"`
	Cache    []cache.MetastoreHealth        `json:"cache"`
	Authz    privilege.SnapshotCacheMetrics `json:"authz"`
}

type healthzDegraded struct {
	Cache bool `json:"cache"`
	WAL   bool `json:"wal"`
}

// handleHealthz reports liveness plus per-subsystem degradation. A degraded
// node still answers 200 — it is alive and serving bounded-stale data —
// with the detail in the body for monitors to alert on. The shape is
// stable: status, degraded.{cache,wal}, and wal/cache/authz sections.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	walErr := s.Service.DB().WALErr()
	cacheDegraded := s.Service.CacheDegraded()
	resp := healthzResponse{
		Status:   "ok",
		Degraded: healthzDegraded{Cache: cacheDegraded, WAL: walErr != nil},
		WAL:      s.Service.DB().WALStats(),
		Cache:    s.Service.CacheHealth(),
		Authz:    s.Service.AuthzMetrics(),
	}
	if cacheDegraded || walErr != nil {
		resp.Status = "degraded"
	}
	if s.cfg.NaiveEncoding {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	buf := jsonenc.Get()
	buf.B = appendHealthz(buf.B, &resp)
	sendPooled(w, http.StatusOK, buf)
}

// --- helpers ---

type errorBody struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
}

func writeErr(w http.ResponseWriter, err error) {
	// Hand the underlying error to the access log (telemetry.go) so 5xx
	// lines can say what actually failed, not just the status code.
	if sw, ok := w.(*statusWriter); ok {
		sw.err = err
	}
	// Injected infrastructure faults map to the statuses a real overloaded
	// or partitioned deployment would return, with Retry-After telling
	// well-behaved clients how long to back off.
	if c, ok := faults.ClassOf(err); ok {
		status := http.StatusServiceUnavailable // Transient, Unavailable
		switch c {
		case faults.Throttled:
			status = http.StatusTooManyRequests
		case faults.Timeout:
			status = http.StatusGatewayTimeout
		}
		after, _ := retry.RetryAfter(err)
		if after > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int((after+time.Second-1)/time.Second)))
		} else if status != http.StatusGatewayTimeout {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, status, errorBody{Error: err.Error(), Code: status})
		return
	}
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, cloudsim.ErrTokenExpired), errors.Is(err, cloudsim.ErrTokenInvalid):
		// Credential problems are the caller's to fix by re-authenticating
		// (or re-vending), not a server fault.
		status = http.StatusUnauthorized
	case errors.Is(err, catalog.ErrNotFound), errors.Is(err, sharing.ErrBadToken):
		status = http.StatusNotFound
	case errors.Is(err, catalog.ErrPermissionDenied), errors.Is(err, sharing.ErrNoAccess),
		errors.Is(err, catalog.ErrTrustedEngineRequired), errors.Is(err, catalog.ErrWorkspaceBinding):
		status = http.StatusForbidden
	case errors.Is(err, catalog.ErrAlreadyExists), errors.Is(err, catalog.ErrPathOverlap),
		errors.Is(err, catalog.ErrNotEmpty):
		status = http.StatusConflict
	case errors.Is(err, catalog.ErrInvalidArgument):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorBody{Error: err.Error(), Code: status})
}

// --- asset CRUD ---

// CreateAssetRequest is the generic creation body.
type CreateAssetRequest struct {
	Type        string            `json:"type"`
	Name        string            `json:"name"`
	ParentFull  string            `json:"parent,omitempty"`
	Comment     string            `json:"comment,omitempty"`
	Properties  map[string]string `json:"properties,omitempty"`
	StoragePath string            `json:"storage_path,omitempty"`
	Spec        json.RawMessage   `json:"spec,omitempty"`
}

func (s *Server) handleCreateAsset(w http.ResponseWriter, r *http.Request) {
	var req CreateAssetRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	cr := catalog.CreateRequest{
		Type: erm.SecurableType(strings.ToUpper(req.Type)), Name: req.Name,
		ParentFull: req.ParentFull, Comment: req.Comment,
		Properties: req.Properties, StoragePath: req.StoragePath,
	}
	if len(req.Spec) > 0 {
		cr.Spec = req.Spec
	}
	e, err := s.Service.CreateAsset(s.ctx(r), cr)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, e)
}

func (s *Server) handleGetAsset(w http.ResponseWriter, r *http.Request) {
	if s.conditional(w, r, 0) {
		return
	}
	e, err := s.Service.GetAsset(s.ctx(r), r.PathValue("full"))
	if err != nil {
		writeErr(w, err)
		return
	}
	if s.cfg.NaiveEncoding {
		writeJSON(w, http.StatusOK, e)
		return
	}
	buf := jsonenc.Get()
	buf.B = jsonenc.AppendEntity(buf.B, e)
	sendPooled(w, http.StatusOK, buf)
}

// UpdateAssetRequest is the PATCH body.
type UpdateAssetRequest struct {
	Comment    *string           `json:"comment,omitempty"`
	Owner      *string           `json:"owner,omitempty"`
	Properties map[string]string `json:"properties,omitempty"`
	Spec       json.RawMessage   `json:"spec,omitempty"`
}

func (s *Server) handleUpdateAsset(w http.ResponseWriter, r *http.Request) {
	var req UpdateAssetRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	ur := catalog.UpdateRequest{Comment: req.Comment, Properties: req.Properties}
	if req.Owner != nil {
		o := privilege.Principal(*req.Owner)
		ur.Owner = &o
	}
	if len(req.Spec) > 0 {
		ur.Spec = req.Spec
	}
	e, err := s.Service.UpdateAsset(s.ctx(r), r.PathValue("full"), ur)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, e)
}

func (s *Server) handleDeleteAsset(w http.ResponseWriter, r *http.Request) {
	force := r.URL.Query().Get("force") == "true"
	if err := s.Service.DeleteAsset(s.ctx(r), r.PathValue("full"), force); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListAssets(w http.ResponseWriter, r *http.Request) {
	if s.conditional(w, r, 0) {
		return
	}
	q := r.URL.Query()
	parent := q.Get("parent")
	typ := erm.SecurableType(strings.ToUpper(q.Get("type")))
	maxResults, _ := strconv.Atoi(q.Get("maxResults"))
	pageToken := q.Get("pageToken")
	if maxResults <= 0 && pageToken == "" {
		// Unpaged legacy behavior: the full, name-sorted listing.
		out, err := s.Service.ListAssets(s.ctx(r), parent, typ)
		if err != nil {
			writeErr(w, err)
			return
		}
		if s.cfg.NaiveEncoding {
			writeJSON(w, http.StatusOK, map[string]any{"assets": out})
			return
		}
		buf := jsonenc.Get()
		buf.B = append(buf.B, `{"assets":`...)
		buf.B = appendEntities(buf.B, out)
		buf.B = append(buf.B, '}')
		sendPooled(w, http.StatusOK, buf)
		return
	}
	if s.cfg.NaiveEncoding {
		page, err := s.Service.ListAssetsPage(s.ctx(r), parent, typ, maxResults, pageToken)
		if err != nil {
			writeErr(w, err)
			return
		}
		resp := map[string]any{"assets": page.Assets}
		if page.NextPageToken != "" {
			resp["nextPageToken"] = page.NextPageToken
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Streaming path: entities are encoded into the response buffer as the
	// keyset scan emits them; no page slice is ever materialized.
	st := newAssetStream()
	next, err := s.Service.ListAssetsPageFunc(s.ctx(r), parent, typ, maxResults, pageToken, st.emit)
	if err != nil {
		st.close()
		writeErr(w, err)
		return
	}
	sendJSON(w, http.StatusOK, st.finish(next))
	st.close()
}

// --- typed conveniences ---

func (s *Server) handleCreateCatalog(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name    string `json:"name"`
		Comment string `json:"comment,omitempty"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	e, err := s.Service.CreateCatalog(s.ctx(r), req.Name, req.Comment)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, e)
}

func (s *Server) handleListCatalogs(w http.ResponseWriter, r *http.Request) {
	out, err := s.Service.ListAssets(s.ctx(r), "", erm.TypeCatalog)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"catalogs": out})
}

func (s *Server) handleCreateSchema(w http.ResponseWriter, r *http.Request) {
	var req struct {
		CatalogName string `json:"catalog_name"`
		Name        string `json:"name"`
		Comment     string `json:"comment,omitempty"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	e, err := s.Service.CreateSchema(s.ctx(r), req.CatalogName, req.Name, req.Comment)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, e)
}

func (s *Server) handleCreateTable(w http.ResponseWriter, r *http.Request) {
	var req struct {
		SchemaFull  string            `json:"schema_full"`
		Name        string            `json:"name"`
		StoragePath string            `json:"storage_path,omitempty"`
		Spec        catalog.TableSpec `json:"spec"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	e, err := s.Service.CreateTable(s.ctx(r), req.SchemaFull, req.Name, req.Spec, req.StoragePath)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, e)
}

// --- governance ---

// GrantRequest is the grant/revoke body.
type GrantRequest struct {
	Securable string `json:"securable"`
	Principal string `json:"principal"`
	Privilege string `json:"privilege"`
}

func (s *Server) handleGrant(w http.ResponseWriter, r *http.Request) {
	var req GrantRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	err := s.Service.Grant(s.ctx(r), req.Securable, privilege.Principal(req.Principal), privilege.Privilege(strings.ToUpper(req.Privilege)))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleRevoke(w http.ResponseWriter, r *http.Request) {
	var req GrantRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	err := s.Service.Revoke(s.ctx(r), req.Securable, privilege.Principal(req.Principal), privilege.Privilege(strings.ToUpper(req.Privilege)))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleGrantsOn(w http.ResponseWriter, r *http.Request) {
	gs, err := s.Service.GrantsOn(s.ctx(r), r.PathValue("full"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"grants": gs})
}

func (s *Server) handleEffective(w http.ResponseWriter, r *http.Request) {
	ps, err := s.Service.EffectivePrivileges(s.ctx(r), r.PathValue("full"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"privileges": ps})
}

// TagRequest sets or unsets a tag.
type TagRequest struct {
	Securable string `json:"securable"`
	Column    string `json:"column,omitempty"`
	Key       string `json:"key"`
	Value     string `json:"value,omitempty"`
}

func (s *Server) handleSetTag(w http.ResponseWriter, r *http.Request) {
	var req TagRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.Service.SetTag(s.ctx(r), req.Securable, req.Column, req.Key, req.Value); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleUnsetTag(w http.ResponseWriter, r *http.Request) {
	var req TagRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.Service.UnsetTag(s.ctx(r), req.Securable, req.Column, req.Key); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ABACRequest creates a rule on a scope.
type ABACRequest struct {
	Scope string             `json:"scope,omitempty"`
	Rule  privilege.ABACRule `json:"rule"`
}

func (s *Server) handleCreateABAC(w http.ResponseWriter, r *http.Request) {
	var req ABACRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	rule, err := s.Service.CreateABACRule(s.ctx(r), req.Scope, req.Rule)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, rule)
}

func (s *Server) handleListABAC(w http.ResponseWriter, r *http.Request) {
	rules, err := s.Service.ABACRules(s.ctx(r))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"rules": rules})
}

func (s *Server) handleDeleteABAC(w http.ResponseWriter, r *http.Request) {
	if err := s.Service.DeleteABACRule(s.ctx(r), ids.ID(r.PathValue("id"))); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- query path ---

func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	var req catalog.ResolveRequest
	bodyHash, err := readJSONHash(r, &req)
	if err != nil {
		writeErr(w, err)
		return
	}
	// Credential-bearing resolves are never conditional: vended tokens
	// expire on their own clock, independent of the metastore version.
	if !req.WithCredentials && s.conditional(w, r, bodyHash) {
		return
	}
	resp, err := s.Service.Resolve(s.ctx(r), req)
	if err != nil {
		writeErr(w, err)
		return
	}
	if s.cfg.NaiveEncoding {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	buf := jsonenc.Get()
	buf.B = jsonenc.AppendResolveResponse(buf.B, resp)
	sendPooled(w, http.StatusOK, buf)
}

// AuthorizeBatchRequest asks whether the principal holds a privilege on
// each of a list of securable IDs — the bulk authorization entry point used
// by second-tier discovery services.
type AuthorizeBatchRequest struct {
	AssetIDs  []string `json:"asset_ids"`
	Privilege string   `json:"privilege"`
}

func (s *Server) handleAuthorizeBatch(w http.ResponseWriter, r *http.Request) {
	var req AuthorizeBatchRequest
	bodyHash, err := readJSONHash(r, &req)
	if err != nil {
		writeErr(w, err)
		return
	}
	if s.conditional(w, r, bodyHash) {
		return
	}
	assetIDs := make([]ids.ID, len(req.AssetIDs))
	for i, a := range req.AssetIDs {
		assetIDs[i] = ids.ID(a)
	}
	allowed, err := s.Service.AuthorizeBatch(s.ctx(r), assetIDs, privilege.Privilege(strings.ToUpper(req.Privilege)))
	if err != nil {
		writeErr(w, err)
		return
	}
	if s.cfg.NaiveEncoding {
		writeJSON(w, http.StatusOK, map[string]any{"allowed": allowed})
		return
	}
	buf := jsonenc.Get()
	buf.B = append(buf.B, `{"allowed":`...)
	if allowed == nil {
		buf.B = append(buf.B, "null"...)
	} else {
		buf.B = append(buf.B, '[')
		for i, ok := range allowed {
			if i > 0 {
				buf.B = append(buf.B, ',')
			}
			buf.B = jsonenc.AppendBool(buf.B, ok)
		}
		buf.B = append(buf.B, ']')
	}
	buf.B = append(buf.B, '}')
	sendPooled(w, http.StatusOK, buf)
}

// TempCredentialRequest asks for a temporary storage credential.
type TempCredentialRequest struct {
	Asset     string `json:"asset,omitempty"`
	Path      string `json:"path,omitempty"`
	Operation string `json:"operation"` // READ or READ_WRITE
}

func (s *Server) handleTempCredentials(w http.ResponseWriter, r *http.Request) {
	var req TempCredentialRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	level := cloudsim.AccessRead
	if strings.EqualFold(req.Operation, "READ_WRITE") {
		level = cloudsim.AccessReadWrite
	}
	var (
		tc  catalog.TempCredential
		err error
	)
	switch {
	case req.Asset != "":
		tc, err = s.Service.TempCredentialForAsset(s.ctx(r), req.Asset, level)
	case req.Path != "":
		tc, err = s.Service.TempCredentialForPath(s.ctx(r), req.Path, level)
	default:
		err = fmt.Errorf("%w: asset or path required", catalog.ErrInvalidArgument)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	// Vended tokens must never be cached: they expire on their own clock.
	w.Header().Set("Cache-Control", "no-store")
	if s.cfg.NaiveEncoding {
		writeJSON(w, http.StatusOK, tc)
		return
	}
	buf := jsonenc.Get()
	buf.B = jsonenc.AppendTempCredential(buf.B, &tc)
	sendPooled(w, http.StatusOK, buf)
}

// --- metadata query / discovery ---

// QueryAssetsRequest mirrors catalog.Filter over the wire. Setting
// max_results (or passing page_token) selects the keyset-paginated path:
// results arrive in index order with a next_page_token instead of the
// full sorted result set.
type QueryAssetsRequest struct {
	Type         string `json:"type,omitempty"`
	CatalogName  string `json:"catalog_name,omitempty"`
	SchemaName   string `json:"schema_name,omitempty"`
	NameContains string `json:"name_contains,omitempty"`
	NamePrefix   string `json:"name_prefix,omitempty"`
	Owner        string `json:"owner,omitempty"`
	TagKey       string `json:"tag_key,omitempty"`
	TagValue     string `json:"tag_value,omitempty"`
	Limit        int    `json:"limit,omitempty"`
	MaxResults   int    `json:"max_results,omitempty"`
	PageToken    string `json:"page_token,omitempty"`
}

func (s *Server) handleQueryAssets(w http.ResponseWriter, r *http.Request) {
	var req QueryAssetsRequest
	bodyHash, err := readJSONHash(r, &req)
	if err != nil {
		writeErr(w, err)
		return
	}
	if s.conditional(w, r, bodyHash) {
		return
	}
	f := catalog.Filter{
		Type: erm.SecurableType(strings.ToUpper(req.Type)), CatalogName: req.CatalogName,
		SchemaName: req.SchemaName, NameContains: req.NameContains, NamePrefix: req.NamePrefix,
		Owner: req.Owner, TagKey: req.TagKey, TagValue: req.TagValue, Limit: req.Limit,
		MaxResults: req.MaxResults, PageToken: req.PageToken,
	}
	if f.MaxResults > 0 || f.PageToken != "" {
		if s.cfg.NaiveEncoding {
			page, qerr := s.Service.QueryAssetsPage(s.ctx(r), f)
			if qerr != nil {
				writeErr(w, qerr)
				return
			}
			resp := map[string]any{"assets": page.Assets}
			if page.NextPageToken != "" {
				resp["nextPageToken"] = page.NextPageToken
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
		st := newAssetStream()
		next, qerr := s.Service.QueryAssetsPageFunc(s.ctx(r), f, st.emit)
		if qerr != nil {
			st.close()
			writeErr(w, qerr)
			return
		}
		sendJSON(w, http.StatusOK, st.finish(next))
		st.close()
		return
	}
	out, err := s.Service.QueryAssets(s.ctx(r), f)
	if err != nil {
		writeErr(w, err)
		return
	}
	if s.cfg.NaiveEncoding {
		writeJSON(w, http.StatusOK, map[string]any{"assets": out})
		return
	}
	buf := jsonenc.Get()
	buf.B = append(buf.B, `{"assets":`...)
	buf.B = appendEntities(buf.B, out)
	buf.B = append(buf.B, '}')
	sendPooled(w, http.StatusOK, buf)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
	res, err := s.Search.Search(s.ctx(r), r.URL.Query().Get("q"), limit)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": res})
}

func (s *Server) handleSubmitLineage(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Edges []lineage.Edge `json:"edges"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	s.Lineage.Submit(req.Edges)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleQueryLineage(w http.ResponseWriter, r *http.Request) {
	id := ids.ID(r.PathValue("id"))
	depth, _ := strconv.Atoi(r.URL.Query().Get("depth"))
	var (
		nodes []lineage.Node
		err   error
	)
	if r.URL.Query().Get("direction") == "upstream" {
		nodes, err = s.Lineage.Upstream(s.ctx(r), id, depth)
	} else {
		nodes, err = s.Lineage.Downstream(s.ctx(r), id, depth)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"nodes": nodes})
}

// --- model registry ---

func (s *Server) handleCreateModel(w http.ResponseWriter, r *http.Request) {
	var req struct {
		SchemaFull string `json:"schema_full"`
		Name       string `json:"name"`
		Comment    string `json:"comment,omitempty"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	e, err := s.Registry.CreateRegisteredModel(s.ctx(r), req.SchemaFull, req.Name, req.Comment)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, e)
}

func (s *Server) handleCreateModelVersion(w http.ResponseWriter, r *http.Request) {
	var req struct {
		RunID  string `json:"run_id,omitempty"`
		Source string `json:"source,omitempty"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	mv, err := s.Registry.CreateModelVersion(s.ctx(r), r.PathValue("full"), req.RunID, req.Source)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, mv)
}

func (s *Server) handleListModelVersions(w http.ResponseWriter, r *http.Request) {
	vs, err := s.Registry.ListModelVersions(s.ctx(r), r.PathValue("full"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"versions": vs})
}

func (s *Server) handleFinalizeModelVersion(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Status string `json:"status"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	v, err := strconv.Atoi(r.PathValue("version"))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: bad version", catalog.ErrInvalidArgument))
		return
	}
	if err := s.Registry.FinalizeModelVersion(s.ctx(r), r.PathValue("full"), v, req.Status); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- Delta Sharing ---

func shareToken(r *http.Request) string {
	return strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
}

func (s *Server) shareMS(r *http.Request) string { return r.Header.Get("X-UC-Metastore") }

func (s *Server) handleListShares(w http.ResponseWriter, r *http.Request) {
	shares, err := s.Sharing.ListShares(s.shareMS(r), shareToken(r))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"items": shares})
}

func (s *Server) handleListShareSchemas(w http.ResponseWriter, r *http.Request) {
	schemas, err := s.Sharing.ListSchemas(s.shareMS(r), shareToken(r), r.PathValue("share"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"items": schemas})
}

func (s *Server) handleListShareTables(w http.ResponseWriter, r *http.Request) {
	tables, err := s.Sharing.ListTables(s.shareMS(r), shareToken(r), r.PathValue("share"), r.PathValue("schema"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"items": tables})
}

func (s *Server) handleQueryShareTable(w http.ResponseWriter, r *http.Request) {
	resp, err := s.Sharing.QueryTable(s.shareMS(r), shareToken(r), r.PathValue("share"), r.PathValue("schema"), r.PathValue("table"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- stats ---

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ctx := s.ctx(r)
	counts, err := s.Service.TypeCounts(ctx.Metastore)
	if err != nil {
		writeErr(w, err)
		return
	}
	bytes, _ := s.Service.WorkingSetBytes(ctx.Metastore)
	st := s.Service.Audit().Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"type_counts":       counts,
		"working_set_bytes": bytes,
		"api_total":         st.Total,
		"api_reads":         st.Reads,
		"api_writes":        st.Writes,
		"read_fraction":     s.Service.Audit().ReadFraction(),
		"cache":             s.Service.CacheMetrics(),
	})
}
