package server

import (
	"encoding/base64"
	"fmt"
	"io"
	"net/http"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/ids"
	"unitycatalog/internal/optimize"
)

// This file adds the extended REST surface: volume file operations, shallow
// clones, renames, workspace bindings, lifecycle tooling (undelete, GC),
// and predictive-optimization triggers. Routes live in the table in
// routes.go.

func (s *Server) handlePutVolumeFile(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: %v", catalog.ErrInvalidArgument, err))
		return
	}
	if err := s.Service.WriteVolumeFile(s.ctx(r), r.PathValue("full"), r.PathValue("name"), data); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) handleGetVolumeFile(w http.ResponseWriter, r *http.Request) {
	data, err := s.Service.ReadVolumeFile(s.ctx(r), r.PathValue("full"), r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (s *Server) handleDeleteVolumeFile(w http.ResponseWriter, r *http.Request) {
	if err := s.Service.DeleteVolumeFile(s.ctx(r), r.PathValue("full"), r.PathValue("name")); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListVolumeFiles(w http.ResponseWriter, r *http.Request) {
	files, err := s.Service.ListVolumeFiles(s.ctx(r), r.PathValue("full"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"files": files})
}

func (s *Server) handleCloneTable(w http.ResponseWriter, r *http.Request) {
	var req struct {
		TargetSchema string `json:"target_schema"`
		TargetName   string `json:"target_name"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	e, err := s.Service.CloneTable(s.ctx(r), r.PathValue("full"), req.TargetSchema, req.TargetName)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, e)
}

func (s *Server) handleRenameAsset(w http.ResponseWriter, r *http.Request) {
	var req struct {
		NewName string `json:"new_name"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	e, err := s.Service.RenameAsset(s.ctx(r), r.PathValue("full"), req.NewName)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, e)
}

func (s *Server) handleOptimizeTable(w http.ResponseWriter, r *http.Request) {
	opt := optimize.New(s.Service, optimize.Options{})
	rep, err := opt.OptimizeTable(s.ctx(r), r.PathValue("full"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleSetBindings(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Workspaces []string `json:"workspaces"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.Service.SetWorkspaceBindings(s.ctx(r), r.PathValue("name"), req.Workspaces); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleUndelete(w http.ResponseWriter, r *http.Request) {
	e, err := s.Service.Undelete(s.ctx(r), ids.ID(r.PathValue("id")))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, e)
}

func (s *Server) handleGC(w http.ResponseWriter, r *http.Request) {
	ctx := s.ctx(r)
	// GC is an administrative sweep: require metastore admin rights.
	info, err := s.Service.Metastore(ctx.Metastore)
	if err != nil {
		writeErr(w, err)
		return
	}
	if info.Owner != ctx.Principal {
		writeErr(w, fmt.Errorf("%w: GC requires the metastore owner", catalog.ErrPermissionDenied))
		return
	}
	res, err := s.Service.RunGC(ctx.Metastore)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// base64Decode is kept for request formats that carry binary inline.
func base64Decode(s string) ([]byte, error) { return base64.StdEncoding.DecodeString(s) }
