package server_test

import (
	"errors"
	"net/http/httptest"
	"testing"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/client"
	"unitycatalog/internal/cloudsim"
	"unitycatalog/internal/delta"
	"unitycatalog/internal/engine"
	"unitycatalog/internal/erm"
	"unitycatalog/internal/lineage"
	"unitycatalog/internal/privilege"
	"unitycatalog/internal/server"
	"unitycatalog/internal/store"
)

// testStack spins up a full HTTP stack and returns a client for "admin".
func testStack(t *testing.T) (*server.Server, *httptest.Server, *client.Client) {
	t.Helper()
	db, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	svc, err := catalog.New(catalog.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.CreateMetastore("ms1", "main", "r", "admin", "s3://root/ms1"); err != nil {
		t.Fatal(err)
	}
	srv := server.New(svc)
	t.Cleanup(func() { srv.Lineage.Close(); srv.Search.Close() })
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, hs, client.New(hs.URL, "admin", "ms1")
}

func TestCRUDOverHTTP(t *testing.T) {
	_, _, c := testStack(t)
	if _, err := c.CreateCatalog("sales", "sales data"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSchema("sales", "raw", ""); err != nil {
		t.Fatal(err)
	}
	tbl, err := c.CreateTable("sales.raw", "orders", catalog.TableSpec{Columns: []catalog.ColumnInfo{
		{Name: "id", Type: "BIGINT"}, {Name: "region", Type: "STRING"},
	}}, "")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.FullName != "sales.raw.orders" || tbl.StoragePath == "" {
		t.Fatalf("table = %+v", tbl)
	}
	got, err := c.GetAsset("sales.raw.orders")
	if err != nil || got.ID != tbl.ID {
		t.Fatalf("get = %v", err)
	}
	// Update.
	comment := "latest orders"
	upd, err := c.UpdateAsset("sales.raw.orders", server.UpdateAssetRequest{Comment: &comment})
	if err != nil || upd.Comment != comment {
		t.Fatalf("update = %+v, %v", upd, err)
	}
	// List.
	tables, err := c.ListAssets("sales.raw", erm.TypeTable)
	if err != nil || len(tables) != 1 {
		t.Fatalf("list = %v, %v", tables, err)
	}
	// Duplicate create maps to 409 / ErrAlreadyExists.
	_, err = c.CreateTable("sales.raw", "orders", catalog.TableSpec{Columns: []catalog.ColumnInfo{{Name: "x", Type: "STRING"}}}, "")
	if !errors.Is(err, catalog.ErrAlreadyExists) {
		t.Fatalf("dup create: %v", err)
	}
	// Delete then 404.
	if err := c.DeleteAsset("sales.raw.orders", false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetAsset("sales.raw.orders"); !errors.Is(err, catalog.ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
}

func TestGrantsAndAuthzOverHTTP(t *testing.T) {
	_, hs, admin := testStack(t)
	admin.CreateCatalog("c", "")
	admin.CreateSchema("c", "s", "")
	admin.CreateTable("c.s", "t", catalog.TableSpec{Columns: []catalog.ColumnInfo{{Name: "x", Type: "BIGINT"}}}, "")

	alice := client.New(hs.URL, "alice", "ms1")
	if _, err := alice.GetAsset("c.s.t"); !errors.Is(err, catalog.ErrPermissionDenied) {
		t.Fatalf("default deny: %v", err)
	}
	for _, g := range []struct {
		obj  string
		priv privilege.Privilege
	}{{"c", privilege.UseCatalog}, {"c.s", privilege.UseSchema}, {"c.s.t", privilege.Select}} {
		if err := admin.Grant(g.obj, "alice", g.priv); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := alice.GetAsset("c.s.t"); err != nil {
		t.Fatalf("after grants: %v", err)
	}
	privs, err := alice.EffectivePrivileges("c.s.t")
	if err != nil || len(privs) == 0 {
		t.Fatalf("effective = %v, %v", privs, err)
	}
	gs, err := admin.GrantsOn("c.s.t")
	if err != nil || len(gs) != 1 {
		t.Fatalf("grants = %v, %v", gs, err)
	}
	if err := admin.Revoke("c.s.t", "alice", privilege.Select); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.GetAsset("c.s.t"); !errors.Is(err, catalog.ErrPermissionDenied) {
		t.Fatalf("after revoke: %v", err)
	}
}

func TestEngineOverRESTClient(t *testing.T) {
	srv, _, admin := testStack(t)
	admin.CreateCatalog("c", "")
	admin.CreateSchema("c", "s", "")
	tbl, err := admin.CreateTable("c.s", "t", catalog.TableSpec{Columns: []catalog.ColumnInfo{
		{Name: "id", Type: "BIGINT"}, {Name: "v", Type: "STRING"},
	}}, "")
	if err != nil {
		t.Fatal(err)
	}
	schema := delta.Schema{Fields: []delta.SchemaField{
		{Name: "id", Type: delta.TypeInt64}, {Name: "v", Type: delta.TypeString},
	}}
	if _, err := delta.Create(delta.ServiceBlobs{Store: srv.Service.Cloud()}, tbl.StoragePath, "t", schema, nil); err != nil {
		t.Fatal(err)
	}

	// The engine talks to the catalog purely over HTTP.
	eng := &engine.Engine{Name: "remote-engine", Catalog: admin, Cloud: srv.Service.Cloud(), Trusted: true}
	adminCtx := catalog.Ctx{Principal: "admin", Metastore: "ms1"}
	if _, err := eng.Execute(adminCtx, "INSERT INTO c.s.t VALUES (1, 'a'), (2, 'b'), (3, 'c')"); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Execute(adminCtx, "SELECT id FROM c.s.t WHERE id >= 2")
	if err != nil || res.RowsReturned != 2 {
		t.Fatalf("select over REST: %+v, %v", res, err)
	}
}

func TestTempCredentialsOverHTTP(t *testing.T) {
	srv, _, admin := testStack(t)
	admin.CreateCatalog("c", "")
	admin.CreateSchema("c", "s", "")
	tbl, _ := admin.CreateTable("c.s", "t", catalog.TableSpec{Columns: []catalog.ColumnInfo{{Name: "x", Type: "BIGINT"}}}, "")

	tc, err := admin.TempCredentialForAsset("c.s.t", cloudsim.AccessReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Service.Cloud().Put(tc.Credential.Token, tbl.StoragePath+"/f", []byte("x")); err != nil {
		t.Fatalf("vended token rejected: %v", err)
	}
	// By path too.
	tc2, err := admin.TempCredentialForPath(tbl.StoragePath+"/f", cloudsim.AccessRead)
	if err != nil || tc2.Asset != tbl.ID {
		t.Fatalf("path cred = %+v, %v", tc2, err)
	}
}

func TestSearchLineageModelsOverHTTP(t *testing.T) {
	_, hs, admin := testStack(t)
	admin.CreateCatalog("ml", "")
	admin.CreateSchema("ml", "prod", "")
	model, err := admin.CreateModel("ml.prod", "churn", "predicts churn")
	if err != nil {
		t.Fatal(err)
	}
	mv, err := admin.CreateModelVersion("ml.prod.churn", "run-9", "")
	if err != nil || mv.Version != 1 {
		t.Fatalf("mv = %+v, %v", mv, err)
	}
	vs, err := admin.ListModelVersions("ml.prod.churn")
	if err != nil || len(vs) != 1 {
		t.Fatalf("versions = %v, %v", vs, err)
	}

	// Search finds the model (event-driven index).
	deadline := 200
	var hits int
	for i := 0; i < deadline; i++ {
		res, err := admin.Search("churn", 0)
		if err != nil {
			t.Fatal(err)
		}
		hits = len(res)
		if hits > 0 {
			break
		}
	}
	if hits == 0 {
		t.Fatal("search found nothing")
	}

	// Lineage round trip.
	other, err := admin.CreateModel("ml.prod", "features", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := admin.SubmitLineage([]lineage.Edge{{Upstream: other.ID, Downstream: model.ID, JobName: "train"}}); err != nil {
		t.Fatal(err)
	}
	nodes, err := admin.Lineage(model.ID, "upstream", 0)
	if err != nil || len(nodes) != 1 || nodes[0].Asset != other.ID {
		t.Fatalf("lineage = %v, %v", nodes, err)
	}
	_ = hs
}
