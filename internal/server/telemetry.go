// Telemetry front end: per-request tracing, the unified metrics registry,
// and the operational HTTP surface (/metrics, /debug/traces, /debug/pprof).
//
// Every API request runs inside a trace. The server stamps the trace ID
// into the X-UC-Trace-Id response header and into the request context, so
// the catalog layers underneath record their spans (store commit phases,
// cache misses, authz snapshot builds, STS mints) against the same trace,
// and audit records carry the same ID. Traces are retained by sampling
// (every Nth) plus an always-on slow threshold, so /debug/traces shows
// where a slow request actually spent its time without paying for span
// retention on the fast path.
package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime/metrics"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"unitycatalog/internal/obs"
)

// Config tunes the server's telemetry. The zero value selects production
// defaults; New uses it.
type Config struct {
	// SampleEvery retains every Nth trace for /debug/traces (default 64;
	// negative disables sampling, leaving only slow-trace retention).
	SampleEvery int
	// SlowThreshold always retains traces at least this slow (default
	// 100ms; negative disables).
	SlowThreshold time.Duration
	// AccessLog emits one structured line per API request (method, path,
	// status, duration, principal, trace ID, and the underlying error on
	// 5xx responses) to AccessLogWriter.
	AccessLog bool
	// AccessLogWriter receives access-log lines (default os.Stderr).
	AccessLogWriter io.Writer
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// NaiveEncoding forces the reflection-based encoding/json path on the
	// hot routes — the ablation baseline the bench-http experiment measures
	// the pooled encoders against.
	NaiveEncoding bool
	// ETagMaxAge bounds the lifetime of a conditional-GET validator
	// (default 30s; negative disables conditional handling). See etag.go.
	ETagMaxAge time.Duration
	// Node attributes this server's trace spans to a fleet node or host in
	// stitched cross-node traces (empty = single-node deployment).
	Node string
	// TenantTopK sizes the per-tenant usage sketches (default 32; negative
	// disables tenant metering entirely).
	TenantTopK int
	// SLORouteP99 is the per-route p99 latency budget the flight-recorder
	// watchdog enforces over poll windows (0 disables the SLO check).
	SLORouteP99 time.Duration
	// FlightFrames / FlightTraces size the flight-recorder rings (defaults
	// 32 frames / 256 traces).
	FlightFrames int
	FlightTraces int
	// FlightInterval starts a background watchdog ticker (0 = no goroutine;
	// /debug/flightrecorder polls lazily on scrape instead).
	FlightInterval time.Duration
}

// initTelemetry assembles the registry, tracer, and HTTP metric families.
// Called from NewWithConfig, before any request is served.
func (s *Server) initTelemetry(cfg Config) {
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 64
	} else if cfg.SampleEvery < 0 {
		cfg.SampleEvery = 0
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = 100 * time.Millisecond
	} else if cfg.SlowThreshold < 0 {
		cfg.SlowThreshold = 0
	}
	if cfg.AccessLogWriter == nil {
		cfg.AccessLogWriter = os.Stderr
	}
	if cfg.ETagMaxAge == 0 {
		cfg.ETagMaxAge = 30 * time.Second
	} else if cfg.ETagMaxAge < 0 {
		cfg.ETagMaxAge = 0
	}
	if cfg.TenantTopK == 0 {
		cfg.TenantTopK = 32
	}
	s.cfg = cfg
	s.tracer = obs.NewTracer(cfg.SampleEvery, cfg.SlowThreshold)
	s.tracer.Node = cfg.Node
	s.metrics = obs.NewRegistry()
	s.Service.RegisterMetrics(s.metrics)
	s.httpReqs = obs.NewCounterVec("route", "code")
	s.httpSeconds = obs.NewHistogramVec(obs.LatencyBuckets(), 1e-9, "route")
	s.httpAllocs = obs.NewGaugeVec("route")
	s.encodeErrors = &obs.Counter{}
	s.allocs = newAllocSampler()
	s.metrics.RegisterCounterVec("uc_http_requests_total", "API requests by route and status code.", s.httpReqs)
	s.metrics.RegisterHistogramVec("uc_http_request_seconds", "API request latency by route.", s.httpSeconds)
	s.metrics.RegisterGaugeVec("uc_http_allocs_per_request", "Sampled heap allocations per request by route.", s.httpAllocs)
	s.metrics.RegisterCounter("uc_http_encode_errors", "Response bodies that failed to encode (served as 500).", s.encodeErrors)
	if cfg.TenantTopK > 0 {
		s.tenants = obs.NewUsageMeter(cfg.TenantTopK)
		s.tenants.RegisterMetrics(s.metrics)
		s.Service.SetUsage(s.tenants)
	}
	s.initFlightRecorder(cfg)
}

// initFlightRecorder wires the anomaly flight recorder: the tracer feeds
// its always-on trace ring, the watchdog checks cover the SLO budget, WAL
// health, and cache degradation, and frames snapshot the signals an
// incident post-mortem needs first.
func (s *Server) initFlightRecorder(cfg Config) {
	s.flight = obs.NewFlightRecorder(cfg.FlightFrames, cfg.FlightTraces)
	s.tracer.Flight = s.flight
	if cfg.SLORouteP99 > 0 {
		s.flight.AddCheck("slo_route_p99", obs.SLOCheck(s.httpSeconds, 0.99, int64(cfg.SLORouteP99)))
	}
	s.flight.AddCheck("wal_error", func() (bool, string) {
		if err := s.Service.DB().WALErr(); err != nil {
			return true, "wal: " + err.Error()
		}
		return false, ""
	})
	s.flight.AddCheck("cache_degraded", func() (bool, string) {
		if s.Service.CacheDegraded() {
			return true, "metadata cache serving degraded"
		}
		return false, ""
	})
	s.flight.AddSnapshot("routes", func() any {
		out := map[string]obs.HistogramSnapshot{}
		s.httpSeconds.Each(func(values []string, h *obs.Histogram) {
			out[strings.Join(values, " ")] = h.Snapshot()
		})
		return out
	})
	s.flight.AddSnapshot("wal", func() any { return s.Service.DB().WALStats() })
	s.flight.AddSnapshot("cache", func() any { return s.Service.CacheHealth() })
	if cfg.FlightInterval > 0 {
		s.flight.Start(cfg.FlightInterval)
	}
}

// Flight exposes the anomaly flight recorder (for embedding hosts, the
// fleet, and tests).
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// Close releases background resources (the flight-recorder ticker, when
// FlightInterval started one). The HTTP listener, if any, is owned by the
// caller.
func (s *Server) Close() { s.flight.Stop() }

// Metrics exposes the server's registry (for embedding hosts and tests).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Tracer exposes the server's tracer (for embedding hosts and tests).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// opsPath reports whether p is an operational endpoint that bypasses
// tracing, metrics, and fault injection: /healthz stays reachable during a
// chaos run, and the telemetry surface must not observe itself.
func opsPath(p string) bool {
	return p == "/healthz" || p == "/metrics" || strings.HasPrefix(p, "/debug/")
}

// statusWriter captures the response status, the response-body byte count
// (for per-tenant metering), and, via writeErr/encodeFail, the underlying
// error, so the access log can report what a 5xx actually was. srv links
// back to the owning server so encoding failures can bump its
// uc_http_encode_errors counter from the package-level write helpers.
type statusWriter struct {
	http.ResponseWriter
	srv    *Server
	status int
	bytes  int64
	err    error
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// allocSampler measures heap allocations across a sampled subset of
// requests (one in allocSampleEvery, one at a time) to feed the per-route
// uc_http_allocs_per_request gauge. The runtime counter is process-wide, so
// concurrent requests add noise — the gauge is an operational signal; the
// bench harness's sequential direct-dispatch phase produces exact numbers.
type allocSampler struct {
	n       atomic.Uint64
	busy    atomic.Bool
	samples [1]metrics.Sample
}

const allocSampleEvery = 256

func newAllocSampler() *allocSampler {
	a := &allocSampler{}
	a.samples[0].Name = "/gc/heap/allocs:objects"
	return a
}

// begin claims the measurement slot for this request when it is sampled,
// returning the allocation counter to diff against in end.
func (a *allocSampler) begin() (uint64, bool) {
	if a.n.Add(1)%allocSampleEvery != 1 {
		return 0, false
	}
	if !a.busy.CompareAndSwap(false, true) {
		return 0, false
	}
	metrics.Read(a.samples[:])
	return a.samples[0].Value.Uint64(), true
}

func (a *allocSampler) end(before uint64) uint64 {
	metrics.Read(a.samples[:])
	delta := a.samples[0].Value.Uint64() - before
	a.busy.Store(false)
	return delta
}

// serveTraced is the request path for API endpoints: start (or continue) a
// trace, expose its ID, dispatch (or fail with an injected fault), then
// record metrics, tenant usage, the access log line, and trace retention.
func (s *Server) serveTraced(w http.ResponseWriter, r *http.Request) {
	// A request carrying propagation headers is a forwarded hop of a trace
	// begun elsewhere: adopt its identity, parent, and sampling decision so
	// the segments stitch into one tree and retention is all-or-nothing.
	var t *obs.Trace
	if pc, ok := obs.ParsePropagation(
		r.Header.Get(obs.TraceIDHeader),
		r.Header.Get(obs.ParentSpanHeader),
		r.Header.Get(obs.SampledHeader),
	); ok {
		t = s.tracer.StartRemote(pc)
	} else {
		t = s.tracer.StartTrace()
	}
	sc := s.tracer.Root(t)
	w.Header().Set(obs.TraceIDHeader, t.ID())
	sw := &statusWriter{ResponseWriter: w, srv: s, status: http.StatusOK}
	r = r.WithContext(obs.ContextWithSpan(r.Context(), sc))

	_, route := s.mux.Handler(r)
	if route == "" {
		route = "unmatched"
	}

	allocsBefore, measure := s.allocs.begin()
	start := time.Now()
	if err := s.injector.Load().Check("http."+r.Method, r.URL.Path); err != nil {
		writeErr(sw, err)
	} else {
		s.mux.ServeHTTP(sw, r)
	}
	took := time.Since(start)
	if measure {
		s.httpAllocs.With(route).Set(int64(s.allocs.end(allocsBefore)))
	}

	s.httpReqs.With(route, strconv.Itoa(sw.status)).Inc()
	// Sampled traces pin an exemplar on their latency bucket, linking the
	// /metrics histogram to the concrete trace in /debug/traces. Unsampled
	// requests pass "" and skip the exemplar store entirely.
	exemplar := ""
	if t.Sampled() {
		exemplar = t.ID()
	}
	s.httpSeconds.With(route).ObserveT(int64(took), exemplar)
	if s.tenants != nil {
		tenant := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
		s.tenants.ObserveRequest(tenant, sw.bytes, took)
	}
	if s.cfg.AccessLog {
		s.writeAccessLog(r, sw, took, t.ID())
	}
	s.tracer.Finish(t, r.Method+" "+r.URL.Path)
}

// writeAccessLog emits one structured logfmt line for the request.
func (s *Server) writeAccessLog(r *http.Request, sw *statusWriter, took time.Duration, traceID string) {
	principal := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
	var b strings.Builder
	fmt.Fprintf(&b, "time=%s method=%s path=%s status=%d duration=%s principal=%q trace=%s",
		time.Now().UTC().Format(time.RFC3339Nano), r.Method, r.URL.Path,
		sw.status, took, principal, traceID)
	if sw.status >= 500 && sw.err != nil {
		fmt.Fprintf(&b, " error=%q", sw.err.Error())
	}
	b.WriteByte('\n')
	s.logMu.Lock()
	s.cfg.AccessLogWriter.Write([]byte(b.String()))
	s.logMu.Unlock()
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

// handleDebugTraces serves recently retained traces (sampled or slow) as a
// JSON array, newest first, each with its span tree.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.tracer.WriteRecentJSON(w)
}

// handleDebugTenants serves the per-tenant usage meter as JSON.
func (s *Server) handleDebugTenants(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.tenants == nil {
		w.Write([]byte("{}\n"))
		return
	}
	s.tenants.WriteJSON(w)
}

// handleDebugFlight serves the flight recorder: a lazy Poll first (so
// deployments without a background ticker still evaluate the watchdog on
// every scrape), then the rings and any frozen incident.
func (s *Server) handleDebugFlight(w http.ResponseWriter, r *http.Request) {
	s.flight.Poll()
	w.Header().Set("Content-Type", "application/json")
	s.flight.WriteJSON(w)
}

// mountOps registers the operational endpoints on m.
func (s *Server) mountOps(m *http.ServeMux) {
	m.HandleFunc("GET /metrics", s.handleMetrics)
	m.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	m.HandleFunc("GET /debug/tenants", s.handleDebugTenants)
	m.HandleFunc("GET /debug/flightrecorder", s.handleDebugFlight)
	if s.cfg.Pprof {
		m.HandleFunc("/debug/pprof/", pprof.Index)
		m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		m.HandleFunc("/debug/pprof/profile", pprof.Profile)
		m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}
