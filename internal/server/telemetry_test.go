package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"unitycatalog/internal/audit"
	"unitycatalog/internal/catalog"
	"unitycatalog/internal/client"
	"unitycatalog/internal/faults"
	"unitycatalog/internal/server"
	"unitycatalog/internal/store"
)

// telemetryStack builds a WAL-backed stack with every trace retained and
// the access log captured, so tests can assert on the full surface.
func telemetryStack(t *testing.T, logBuf *bytes.Buffer) (*server.Server, *httptest.Server, *client.Client) {
	t.Helper()
	db, err := store.Open(store.Options{WALPath: t.TempDir() + "/uc.wal"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	svc, err := catalog.New(catalog.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.CreateMetastore("ms1", "main", "r", "admin", "s3://root/ms1"); err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{SampleEvery: 1, SlowThreshold: time.Nanosecond}
	if logBuf != nil {
		cfg.AccessLog = true
		cfg.AccessLogWriter = logBuf
	}
	srv := server.NewWithConfig(svc, cfg)
	t.Cleanup(func() { srv.Lineage.Close(); srv.Search.Close() })
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, hs, client.New(hs.URL, "admin", "ms1")
}

func mustGet(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func seedAssets(t *testing.T, c *client.Client) {
	t.Helper()
	if _, err := c.CreateCatalog("sales", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSchema("sales", "raw", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("sales.raw", "orders", catalog.TableSpec{
		Columns: []catalog.ColumnInfo{{Name: "id", Type: "BIGINT"}},
	}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetAsset("sales.raw.orders"); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsEndpoint asserts /metrics exposes every layer's families:
// store commits and WAL batching, cache traffic, authz snapshots, audit
// aggregates, and per-route HTTP latency.
func TestMetricsEndpoint(t *testing.T) {
	_, hs, c := telemetryStack(t, nil)
	seedAssets(t, c)

	resp, body := mustGet(t, hs.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	for _, family := range []string{
		"uc_store_commits_total",
		"uc_store_commit_seconds_bucket",
		"uc_store_wal_batches_total",
		"uc_store_wal_batch_size_bucket",
		"uc_store_wal_fsync_seconds_bucket",
		"uc_cache_hits_total",
		"uc_cache_misses_total",
		"uc_cache_degraded",
		"uc_authz_snapshot_hits_total",
		"uc_authz_snapshot_builds_total",
		"uc_audit_records_total",
		"uc_cloud_puts_total",
		"uc_http_requests_total",
		"uc_http_request_seconds_bucket",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
	// The seed issued writes, so commit counters must be non-zero and the
	// HTTP families must carry route labels.
	if strings.Contains(body, "uc_store_commits_total 0\n") {
		t.Error("uc_store_commits_total still zero after writes")
	}
	if !strings.Contains(body, `route="POST /api/2.1/unity-catalog/tables"`) {
		t.Error("uc_http_requests_total lacks per-route labels")
	}
}

// TestTraceHeaderAndAuditCorrelation asserts the request's X-UC-Trace-Id
// shows up on the audit records that request produced.
func TestTraceHeaderAndAuditCorrelation(t *testing.T) {
	srv, hs, c := telemetryStack(t, nil)
	seedAssets(t, c)

	req, _ := http.NewRequest("GET", hs.URL+"/api/2.1/unity-catalog/assets/sales.raw.orders", nil)
	req.Header.Set("Authorization", "Bearer admin")
	req.Header.Set("X-UC-Metastore", "ms1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get asset = %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-UC-Trace-Id")
	if len(traceID) != 16 {
		t.Fatalf("X-UC-Trace-Id = %q, want 16 hex chars", traceID)
	}
	recs := srv.Service.Audit().Filter(func(r audit.Record) bool { return r.TraceID == traceID })
	if len(recs) == 0 {
		t.Fatalf("no audit records carry trace %s", traceID)
	}
	// The one request produces both its API-request record and the authz
	// decision underneath it, all under the same trace.
	kinds := map[audit.Kind]bool{}
	for _, r := range recs {
		kinds[r.Kind] = true
	}
	if !kinds[audit.KindAPIRequest] || !kinds[audit.KindAuthz] {
		t.Errorf("trace %s records = %+v, want API request + authz decision", traceID, recs)
	}
	// No other request's records may share the ID.
	for _, r := range recs {
		if r.Operation != "GetAsset" && r.Operation != "GetTABLE" {
			t.Errorf("trace %s matched unrelated record %+v", traceID, r)
		}
	}
}

// TestDebugTracesSpanTree asserts a retained trace of a write request shows
// the store commit phases, and that read traces surface cache and authz
// work.
func TestDebugTracesSpanTree(t *testing.T) {
	_, hs, c := telemetryStack(t, nil)
	seedAssets(t, c)

	resp, body := mustGet(t, hs.URL+"/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces = %d", resp.StatusCode)
	}
	var traces []struct {
		ID    string          `json:"trace_id"`
		Op    string          `json:"op"`
		Spans json.RawMessage `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("bad /debug/traces JSON: %v\n%s", err, body)
	}
	if len(traces) == 0 {
		t.Fatal("no traces retained despite 1ns slow threshold")
	}
	for _, span := range []string{"store.commit", "store.sequence", "store.wal", "store.apply", "cache.", "authz.build"} {
		if !strings.Contains(body, span) {
			t.Errorf("retained traces missing %q spans:\n%s", span, body)
		}
	}
	for _, tr := range traces {
		if len(tr.ID) != 16 {
			t.Errorf("trace id %q not 16 chars", tr.ID)
		}
		if tr.Op == "" {
			t.Errorf("trace %s has no op label", tr.ID)
		}
	}
}

// TestHealthzShape pins the /healthz JSON contract: status plus degraded
// flags and the wal/cache/authz sections.
func TestHealthzShape(t *testing.T) {
	_, hs, c := telemetryStack(t, nil)
	seedAssets(t, c)

	resp, body := mustGet(t, hs.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}
	var h struct {
		Status   string           `json:"status"`
		Degraded map[string]*bool `json:"degraded"`
		WAL      json.RawMessage  `json:"wal"`
		Cache    json.RawMessage  `json:"cache"`
		Authz    json.RawMessage  `json:"authz"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("bad /healthz JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	for _, key := range []string{"cache", "wal"} {
		if h.Degraded[key] == nil {
			t.Errorf("degraded.%s missing", key)
		} else if *h.Degraded[key] {
			t.Errorf("degraded.%s = true on a healthy stack", key)
		}
	}
	if len(h.WAL) == 0 || len(h.Cache) == 0 || len(h.Authz) == 0 {
		t.Errorf("missing sections in /healthz: %s", body)
	}
	if !strings.Contains(string(h.WAL), "Batches") {
		t.Errorf("wal section lacks batch stats: %s", h.WAL)
	}
}

// TestAccessLog asserts per-request lines carry method, path, status,
// principal, and trace ID, and that 5xx lines include the underlying error.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	srv, hs, c := telemetryStack(t, &buf)
	seedAssets(t, c)

	// Force a 5xx via an always-on unavailability fault.
	inj := faults.New(1)
	inj.AddRule(faults.Rule{Op: "http.GET", Class: faults.Unavailable, P: 1})
	srv.SetFaults(inj)
	req, _ := http.NewRequest("GET", hs.URL+"/api/2.1/unity-catalog/assets/sales.raw.orders", nil)
	req.Header.Set("Authorization", "Bearer admin")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("faulted GET = %d", resp.StatusCode)
	}
	srv.SetFaults(nil)

	logs := buf.String()
	if !strings.Contains(logs, `method=POST path=/api/2.1/unity-catalog/tables status=201`) {
		t.Errorf("access log missing create-table line:\n%s", logs)
	}
	if !strings.Contains(logs, `principal="admin"`) || !strings.Contains(logs, "trace=") {
		t.Errorf("access log lines lack principal/trace fields:\n%s", logs)
	}
	var errLine string
	for _, line := range strings.Split(logs, "\n") {
		if strings.Contains(line, "status=503") {
			errLine = line
		}
	}
	if errLine == "" {
		t.Fatalf("no 503 line in access log:\n%s", logs)
	}
	if !strings.Contains(errLine, "error=") || !strings.Contains(errLine, "unavailable") {
		t.Errorf("5xx line lacks underlying error: %s", errLine)
	}
}

// TestPprofGated asserts /debug/pprof/ is 404 by default and served when
// enabled.
func TestPprofGated(t *testing.T) {
	_, hs, _ := telemetryStack(t, nil)
	if resp, _ := mustGet(t, hs.URL+"/debug/pprof/"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without flag = %d, want 404", resp.StatusCode)
	}

	db, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	svc, err := catalog.New(catalog.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewWithConfig(svc, server.Config{Pprof: true})
	t.Cleanup(func() { srv.Lineage.Close(); srv.Search.Close() })
	hs2 := httptest.NewServer(srv)
	t.Cleanup(hs2.Close)
	if resp, body := mustGet(t, hs2.URL+"/debug/pprof/"); resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof with flag = %d", resp.StatusCode)
	}
}
