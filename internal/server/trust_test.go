package server_test

import (
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/client"
	"unitycatalog/internal/privilege"
)

// TestTrustedEngineIdentityOverHTTP verifies the §4.3.2 rule end to end over
// REST: FGAC rules are vended only to registered machine identities, and
// untrusted callers are refused access to FGAC-protected tables.
func TestTrustedEngineIdentityOverHTTP(t *testing.T) {
	srv, hs, admin := testStack(t)
	srv.TrustEngine("dbr-prod") // machine identity registration

	admin.CreateCatalog("c", "")
	admin.CreateSchema("c", "s", "")
	if _, err := admin.CreateTable("c.s", "t", catalog.TableSpec{
		Columns: []catalog.ColumnInfo{{Name: "region", Type: "STRING"}},
		FGAC: privilege.FGACPolicy{RowFilters: []privilege.RowFilter{{
			Predicate: "region = 'EU'", Columns: []string{"region"},
		}}},
	}, ""); err != nil {
		t.Fatal(err)
	}
	// Grant the machine identity and a human the read chain.
	for _, p := range []string{"dbr-prod", "human"} {
		admin.Grant("c", p, privilege.UseCatalog)
		admin.Grant("c.s", p, privilege.UseSchema)
		admin.Grant("c.s.t", p, privilege.Select)
	}

	// The trusted machine identity receives the FGAC rules.
	trusted := client.New(hs.URL, "dbr-prod", "ms1")
	resp, err := trusted.Resolve(catalog.Ctx{Principal: "dbr-prod", Metastore: "ms1"}, catalog.ResolveRequest{Names: []string{"c.s.t"}})
	if err != nil {
		t.Fatal(err)
	}
	ra := resp.Assets["c.s.t"]
	if ra.FGAC == nil || len(ra.FGAC.RowFilters) != 1 {
		t.Fatalf("trusted identity should receive FGAC rules: %+v", ra.FGAC)
	}
	// An unregistered identity with the same grants is refused.
	human := client.New(hs.URL, "human", "ms1")
	if _, err := human.Resolve(catalog.Ctx{Principal: "human", Metastore: "ms1"}, catalog.ResolveRequest{Names: []string{"c.s.t"}}); !errors.Is(err, catalog.ErrPermissionDenied) {
		t.Fatalf("untrusted identity: %v", err)
	}
}

// TestIcebergMountThroughMainServer exercises the /iceberg/{ms}/ mount.
func TestIcebergMountThroughMainServer(t *testing.T) {
	_, hs, admin := testStack(t)
	admin.CreateCatalog("lake", "")
	admin.CreateSchema("lake", "bronze", "")
	if _, err := admin.CreateTable("lake.bronze", "events", catalog.TableSpec{
		Columns: []catalog.ColumnInfo{{Name: "ts", Type: "BIGINT"}},
	}, ""); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest("GET", hs.URL+"/iceberg/ms1/v1/namespaces", nil)
	req.Header.Set("Authorization", "Bearer admin")
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("iceberg namespaces = %d", resp.StatusCode)
	}
	var body struct {
		Namespaces [][]string `json:"namespaces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Namespaces) != 1 || body.Namespaces[0][0] != "lake" {
		t.Fatalf("namespaces = %v", body.Namespaces)
	}
}

// TestSharingProtocolViaSDKClient drives the Delta Sharing HTTP endpoints
// through the recipient-side SDK client.
func TestSharingProtocolViaSDKClient(t *testing.T) {
	srv, hs, admin := testStack(t)
	admin.CreateCatalog("sales", "")
	admin.CreateSchema("sales", "raw", "")
	if _, err := admin.CreateTable("sales.raw", "orders", catalog.TableSpec{
		Columns: []catalog.ColumnInfo{{Name: "id", Type: "BIGINT"}},
	}, ""); err != nil {
		t.Fatal(err)
	}
	adminCtx := catalog.Ctx{Principal: "admin", Metastore: "ms1", TrustedEngine: true}
	if _, err := srv.Sharing.CreateShare(adminCtx, "s1", []string{"sales.raw.orders"}); err != nil {
		t.Fatal(err)
	}
	token, err := srv.Sharing.CreateRecipient(adminCtx, "partner", []string{"s1"})
	if err != nil {
		t.Fatal(err)
	}

	sc := &client.SharingClient{Base: hs.URL, Token: token, Metastore: "ms1"}
	shares, err := sc.ListShares()
	if err != nil || len(shares) != 1 || shares[0] != "s1" {
		t.Fatalf("shares = %v, %v", shares, err)
	}
	tables, err := sc.ListTables("s1", "raw")
	if err != nil || len(tables) != 1 {
		t.Fatalf("tables = %v, %v", tables, err)
	}
	// A bad token is rejected at the protocol boundary.
	bad := &client.SharingClient{Base: hs.URL, Token: "dss_bogus", Metastore: "ms1"}
	if _, err := bad.ListShares(); err == nil {
		t.Fatal("bogus token should fail")
	}
}
