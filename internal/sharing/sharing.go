// Package sharing implements a Delta-Sharing-style protocol (paper §1,
// §6.2): sharing governed tables with recipients — internal or external to
// the platform — without copying data. A provider creates shares (named
// collections of tables), registers recipients with bearer tokens, and the
// sharing server answers the protocol's discovery and query endpoints,
// returning table metadata plus short-lived pre-authorized file URLs backed
// by the catalog's credential vending.
package sharing

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/cloudsim"
	"unitycatalog/internal/delta"
	"unitycatalog/internal/erm"
	"unitycatalog/internal/privilege"
)

// Common errors.
var (
	ErrBadToken = errors.New("sharing: unknown recipient token")
	ErrNoAccess = errors.New("sharing: share not granted to recipient")
)

// ShareSpec is the type-specific metadata of a SHARE entity: the full names
// of tables exposed through the share.
type ShareSpec struct {
	Tables []string `json:"tables"`
}

// RecipientSpec is the type-specific metadata of a RECIPIENT entity.
type RecipientSpec struct {
	// BearerToken authenticates the recipient to the sharing server.
	BearerToken string `json:"bearer_token"`
	// Shares lists share names granted to this recipient.
	Shares []string `json:"shares"`
}

// Server is the Delta Sharing provider endpoint.
type Server struct {
	Service *catalog.Service

	mu sync.RWMutex
	// tokenIndex caches bearer token -> recipient name per metastore.
	tokenIndex map[string]map[string]string
}

// NewServer returns a sharing server over the catalog service.
func NewServer(svc *catalog.Service) *Server {
	return &Server{Service: svc, tokenIndex: map[string]map[string]string{}}
}

// CreateShare creates a share containing the given tables. The creator must
// own the share's tables (sharing extends their authority to recipients).
func (s *Server) CreateShare(ctx catalog.Ctx, name string, tables []string) (*erm.Entity, error) {
	for _, tbl := range tables {
		if _, err := s.Service.GetAsset(ctx, tbl); err != nil {
			return nil, fmt.Errorf("sharing: table %s: %w", tbl, err)
		}
	}
	return s.Service.CreateAsset(ctx, catalog.CreateRequest{
		Type: erm.TypeShare, Name: name, Spec: &ShareSpec{Tables: tables},
	})
}

// AddTableToShare appends a table to an existing share.
func (s *Server) AddTableToShare(ctx catalog.Ctx, shareName, tableFull string) error {
	e, err := s.Service.GetAsset(ctx, shareName)
	if err != nil {
		return err
	}
	var spec ShareSpec
	if err := e.DecodeSpec(&spec); err != nil {
		return err
	}
	for _, t := range spec.Tables {
		if t == tableFull {
			return nil
		}
	}
	if _, err := s.Service.GetAsset(ctx, tableFull); err != nil {
		return err
	}
	spec.Tables = append(spec.Tables, tableFull)
	_, err = s.Service.UpdateAsset(ctx, shareName, catalog.UpdateRequest{Spec: &spec})
	return err
}

// CreateRecipient registers a recipient and returns its bearer token.
func (s *Server) CreateRecipient(ctx catalog.Ctx, name string, shares []string) (string, error) {
	tok := make([]byte, 24)
	rand.Read(tok)
	token := "dss_" + hex.EncodeToString(tok)
	_, err := s.Service.CreateAsset(ctx, catalog.CreateRequest{
		Type: erm.TypeRecipient, Name: name,
		Spec: &RecipientSpec{BearerToken: token, Shares: shares},
	})
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.tokenIndex[ctx.Metastore] == nil {
		s.tokenIndex[ctx.Metastore] = map[string]string{}
	}
	s.tokenIndex[ctx.Metastore][token] = name
	s.mu.Unlock()
	return token, nil
}

// GrantShare adds a share to a recipient's grant list.
func (s *Server) GrantShare(ctx catalog.Ctx, recipientName, shareName string) error {
	e, err := s.Service.GetAsset(ctx, recipientName)
	if err != nil {
		return err
	}
	var spec RecipientSpec
	if err := e.DecodeSpec(&spec); err != nil {
		return err
	}
	for _, sh := range spec.Shares {
		if sh == shareName {
			return nil
		}
	}
	spec.Shares = append(spec.Shares, shareName)
	_, err = s.Service.UpdateAsset(ctx, recipientName, catalog.UpdateRequest{Spec: &spec})
	return err
}

// recipient resolves a bearer token to the recipient's spec.
func (s *Server) recipient(msID, token string) (string, RecipientSpec, error) {
	s.mu.RLock()
	name := s.tokenIndex[msID][token]
	s.mu.RUnlock()
	admin := s.adminCtx(msID)
	if name == "" {
		// Rebuild the index (e.g. after restart).
		recipients, err := s.Service.ListAssets(admin, "", erm.TypeRecipient)
		if err != nil {
			return "", RecipientSpec{}, err
		}
		s.mu.Lock()
		if s.tokenIndex[msID] == nil {
			s.tokenIndex[msID] = map[string]string{}
		}
		for _, r := range recipients {
			var spec RecipientSpec
			if r.DecodeSpec(&spec) == nil && spec.BearerToken != "" {
				s.tokenIndex[msID][spec.BearerToken] = r.Name
			}
		}
		name = s.tokenIndex[msID][token]
		s.mu.Unlock()
	}
	if name == "" {
		return "", RecipientSpec{}, ErrBadToken
	}
	e, err := s.Service.GetAsset(admin, name)
	if err != nil {
		return "", RecipientSpec{}, err
	}
	var spec RecipientSpec
	if err := e.DecodeSpec(&spec); err != nil {
		return "", RecipientSpec{}, err
	}
	return name, spec, nil
}

// adminCtx impersonates the metastore owner for share bookkeeping: the
// sharing server acts with the provider's authority, like the paper's
// Delta Sharing server does.
func (s *Server) adminCtx(msID string) catalog.Ctx {
	info, err := s.Service.Metastore(msID)
	if err != nil {
		return catalog.Ctx{Metastore: msID, TrustedEngine: true}
	}
	return catalog.Ctx{Principal: info.Owner, Metastore: msID, TrustedEngine: true}
}

// ListShares answers the protocol's share discovery for a recipient token.
func (s *Server) ListShares(msID, token string) ([]string, error) {
	_, spec, err := s.recipient(msID, token)
	if err != nil {
		return nil, err
	}
	out := append([]string(nil), spec.Shares...)
	sort.Strings(out)
	return out, nil
}

// shareSpec loads a share the recipient is entitled to.
func (s *Server) shareSpec(msID, token, share string) (ShareSpec, error) {
	_, rspec, err := s.recipient(msID, token)
	if err != nil {
		return ShareSpec{}, err
	}
	granted := false
	for _, sh := range rspec.Shares {
		if sh == share {
			granted = true
			break
		}
	}
	if !granted {
		return ShareSpec{}, fmt.Errorf("%w: %s", ErrNoAccess, share)
	}
	e, err := s.Service.GetAsset(s.adminCtx(msID), share)
	if err != nil {
		return ShareSpec{}, err
	}
	var spec ShareSpec
	err = e.DecodeSpec(&spec)
	return spec, err
}

// ListSchemas lists the schema segments exposed by a share.
func (s *Server) ListSchemas(msID, token, share string) ([]string, error) {
	spec, err := s.shareSpec(msID, token, share)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	for _, tbl := range spec.Tables {
		parts := strings.Split(tbl, ".")
		if len(parts) != 3 {
			continue
		}
		if !seen[parts[1]] {
			seen[parts[1]] = true
			out = append(out, parts[1])
		}
	}
	sort.Strings(out)
	return out, nil
}

// ListTables lists table names within a share schema.
func (s *Server) ListTables(msID, token, share, schema string) ([]string, error) {
	spec, err := s.shareSpec(msID, token, share)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, tbl := range spec.Tables {
		parts := strings.Split(tbl, ".")
		if len(parts) == 3 && parts[1] == schema {
			out = append(out, parts[2])
		}
	}
	sort.Strings(out)
	return out, nil
}

// FileAction is one pre-authorized data file in a query response, the
// analogue of the protocol's presigned URL.
type FileAction struct {
	URL         string `json:"url"`   // object path
	Token       string `json:"token"` // short-lived read token for it
	Size        int64  `json:"size"`
	NumRecords  int64  `json:"num_records,omitempty"`
	ExpiresAtMS int64  `json:"expiration_timestamp"`
}

// QueryResponse is the protocol's table query result.
type QueryResponse struct {
	Schema  delta.Schema `json:"schema"`
	Version int64        `json:"version"`
	Files   []FileAction `json:"files"`
}

// QueryTable returns the shared table's schema, version, and pre-authorized
// file URLs. Recipients never receive catalog credentials — only per-file
// read access scoped to the table, vended via the provider's catalog.
func (s *Server) QueryTable(msID, token, share, schema, table string) (*QueryResponse, error) {
	spec, err := s.shareSpec(msID, token, share)
	if err != nil {
		return nil, err
	}
	full := ""
	for _, tbl := range spec.Tables {
		parts := strings.Split(tbl, ".")
		if len(parts) == 3 && parts[1] == schema && parts[2] == table {
			full = tbl
			break
		}
	}
	if full == "" {
		return nil, fmt.Errorf("%w: %s.%s in share %s", catalog.ErrNotFound, schema, table, share)
	}
	admin := s.adminCtx(msID)
	tc, err := s.Service.TempCredentialForAsset(admin, full, cloudsim.AccessRead)
	if err != nil {
		return nil, err
	}
	dtbl := delta.NewTable(tc.Credential.Scope, delta.TokenBlobs{Store: s.Service.Cloud(), Token: tc.Credential.Token})
	snap, err := dtbl.Snapshot()
	if err != nil {
		return nil, err
	}
	resp := &QueryResponse{Schema: snap.Schema, Version: snap.Version}
	for _, f := range snap.Files {
		fa := FileAction{
			URL:         snap.Path + "/" + f.Path,
			Token:       tc.Credential.Token,
			Size:        f.Size,
			ExpiresAtMS: tc.Credential.ExpiresAt.UnixMilli(),
		}
		if f.Stats != nil {
			fa.NumRecords = f.Stats.NumRecords
		}
		resp.Files = append(resp.Files, fa)
	}
	return resp, nil
}

// Client is a Delta Sharing recipient-side reader.
type Client struct {
	Server *Server // in-process transport; the REST server wraps the same API
	Cloud  *cloudsim.Store
	MSID   string
	Token  string
}

// ReadTable fetches all rows of a shared table using only the protocol
// response (no catalog access).
func (c *Client) ReadTable(share, schema, table string) (*delta.Batch, error) {
	resp, err := c.Server.QueryTable(c.MSID, c.Token, share, schema, table)
	if err != nil {
		return nil, err
	}
	out := delta.NewBatch(resp.Schema)
	for _, f := range resp.Files {
		data, err := c.Cloud.Get(f.Token, f.URL)
		if err != nil {
			return nil, fmt.Errorf("sharing: fetch %s: %w", f.URL, err)
		}
		batch, err := delta.DecodeBatch(data, nil)
		if err != nil {
			return nil, err
		}
		out.Append(batch)
	}
	return out, nil
}

// ensure privilege import is used (owners of shares are principals).
var _ privilege.Principal
