package sharing

import (
	"errors"
	"testing"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/delta"
	"unitycatalog/internal/store"
)

func setup(t *testing.T) (*Server, catalog.Ctx) {
	t.Helper()
	db, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	svc, err := catalog.New(catalog.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	svc.CreateMetastore("ms1", "main", "r", "admin", "s3://root/ms1")
	admin := catalog.Ctx{Principal: "admin", Metastore: "ms1", TrustedEngine: true}
	svc.CreateCatalog(admin, "sales", "")
	svc.CreateSchema(admin, "sales", "raw", "")
	e, err := svc.CreateTable(admin, "sales.raw", "orders", catalog.TableSpec{Columns: []catalog.ColumnInfo{
		{Name: "id", Type: "BIGINT"}, {Name: "region", Type: "STRING"},
	}}, "")
	if err != nil {
		t.Fatal(err)
	}
	schema := delta.Schema{Fields: []delta.SchemaField{
		{Name: "id", Type: delta.TypeInt64}, {Name: "region", Type: delta.TypeString},
	}}
	tbl, err := delta.Create(delta.ServiceBlobs{Store: svc.Cloud()}, e.StoragePath, "orders", schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := delta.NewBatch(schema)
	for i := 0; i < 25; i++ {
		b.AppendRow(int64(i), []string{"US", "EU"}[i%2])
	}
	if _, err := tbl.Append(b); err != nil {
		t.Fatal(err)
	}
	return NewServer(svc), admin
}

func TestShareDiscoveryAndQuery(t *testing.T) {
	srv, admin := setup(t)
	if _, err := srv.CreateShare(admin, "sales_share", []string{"sales.raw.orders"}); err != nil {
		t.Fatal(err)
	}
	token, err := srv.CreateRecipient(admin, "partner_co", []string{"sales_share"})
	if err != nil || token == "" {
		t.Fatalf("recipient: %q, %v", token, err)
	}

	shares, err := srv.ListShares("ms1", token)
	if err != nil || len(shares) != 1 || shares[0] != "sales_share" {
		t.Fatalf("shares = %v, %v", shares, err)
	}
	schemas, err := srv.ListSchemas("ms1", token, "sales_share")
	if err != nil || len(schemas) != 1 || schemas[0] != "raw" {
		t.Fatalf("schemas = %v, %v", schemas, err)
	}
	tables, err := srv.ListTables("ms1", token, "sales_share", "raw")
	if err != nil || len(tables) != 1 || tables[0] != "orders" {
		t.Fatalf("tables = %v, %v", tables, err)
	}
	resp, err := srv.QueryTable("ms1", token, "sales_share", "raw", "orders")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 1 || resp.Files[0].NumRecords != 25 {
		t.Fatalf("files = %+v", resp.Files)
	}

	// End-to-end client read using only the protocol response.
	client := &Client{Server: srv, Cloud: srv.Service.Cloud(), MSID: "ms1", Token: token}
	batch, err := client.ReadTable("sales_share", "raw", "orders")
	if err != nil || batch.NumRows != 25 {
		t.Fatalf("client read = %d rows, %v", batch.NumRows, err)
	}
}

func TestRecipientIsolation(t *testing.T) {
	srv, admin := setup(t)
	srv.CreateShare(admin, "sales_share", []string{"sales.raw.orders"})
	srv.CreateShare(admin, "other_share", nil)
	tok1, _ := srv.CreateRecipient(admin, "r1", []string{"sales_share"})
	tok2, _ := srv.CreateRecipient(admin, "r2", []string{"other_share"})

	// r2 cannot access sales_share.
	if _, err := srv.QueryTable("ms1", tok2, "sales_share", "raw", "orders"); !errors.Is(err, ErrNoAccess) {
		t.Fatalf("cross-share access: %v", err)
	}
	// Garbage tokens are rejected.
	if _, err := srv.ListShares("ms1", "dss_bogus"); !errors.Is(err, ErrBadToken) {
		t.Fatalf("bad token: %v", err)
	}
	// The file token from a legit query is scoped to the table only.
	resp, err := srv.QueryTable("ms1", tok1, "sales_share", "raw", "orders")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Service.Cloud().Get(resp.Files[0].Token, "s3://root/ms1/other"); err == nil {
		t.Fatal("file token escaped its table scope")
	}
}

func TestGrantShareAndAddTable(t *testing.T) {
	srv, admin := setup(t)
	srv.CreateShare(admin, "s1", nil)
	tok, _ := srv.CreateRecipient(admin, "r", nil)
	if shares, _ := srv.ListShares("ms1", tok); len(shares) != 0 {
		t.Fatalf("initial shares = %v", shares)
	}
	if err := srv.GrantShare(admin, "r", "s1"); err != nil {
		t.Fatal(err)
	}
	if shares, _ := srv.ListShares("ms1", tok); len(shares) != 1 {
		t.Fatalf("after grant = %v", shares)
	}
	if err := srv.AddTableToShare(admin, "s1", "sales.raw.orders"); err != nil {
		t.Fatal(err)
	}
	tables, err := srv.ListTables("ms1", tok, "s1", "raw")
	if err != nil || len(tables) != 1 {
		t.Fatalf("tables = %v, %v", tables, err)
	}
	// Adding a nonexistent table fails.
	if err := srv.AddTableToShare(admin, "s1", "sales.raw.nope"); !errors.Is(err, catalog.ErrNotFound) {
		t.Fatalf("missing table: %v", err)
	}
}

func TestTokenIndexRebuild(t *testing.T) {
	srv, admin := setup(t)
	srv.CreateShare(admin, "s1", []string{"sales.raw.orders"})
	tok, _ := srv.CreateRecipient(admin, "r", []string{"s1"})

	// A fresh server instance (restart) resolves the token from storage.
	srv2 := NewServer(srv.Service)
	shares, err := srv2.ListShares("ms1", tok)
	if err != nil || len(shares) != 1 {
		t.Fatalf("rebuilt index = %v, %v", shares, err)
	}
}
