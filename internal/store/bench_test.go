package store

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkCommitThroughput measures the write path under concurrent
// committers to a single metastore, across the grid that matters for the
// group-commit design: writer count × simulated backend round trip
// (CommitLatency) × WAL on/off. Before group commit, N writers paid N
// serialized round trips and N WAL flushes; after, they share one batch
// flush+fsync and overlap their round trips, so the lat=2ms cells are the
// headline (see EXPERIMENTS.md).
//
// GOMAXPROCS note: this container exposes one core, so RunParallel cannot
// show CPU parallelism — but commit latency is sleep-bound, not CPU-bound,
// and overlapping sleeps (the thing group commit enables) shows up fine.
func BenchmarkCommitThroughput(b *testing.B) {
	for _, writers := range []int{1, 8, 64} {
		for _, lat := range []time.Duration{0, 2 * time.Millisecond} {
			for _, wal := range []bool{false, true} {
				name := fmt.Sprintf("writers=%d/lat=%s/wal=%v", writers, lat, wal)
				b.Run(name, func(b *testing.B) {
					opts := Options{CommitLatency: lat}
					if wal {
						opts.WALPath = filepath.Join(b.TempDir(), "bench.wal")
					}
					db, err := Open(opts)
					if err != nil {
						b.Fatal(err)
					}
					defer db.Close()
					if err := db.CreateMetastore("m"); err != nil {
						b.Fatal(err)
					}
					var seq atomic.Int64
					b.SetParallelism(writers) // goroutines = writers × GOMAXPROCS
					b.ReportAllocs()
					b.ResetTimer()
					b.RunParallel(func(pb *testing.PB) {
						for pb.Next() {
							n := seq.Add(1)
							key := fmt.Sprintf("k%d", n%512)
							if _, err := db.Update("m", func(tx *Tx) error {
								tx.Put("t", key, []byte("v"))
								return nil
							}); err != nil {
								b.Fatal(err)
							}
						}
					})
				})
			}
		}
	}
}
