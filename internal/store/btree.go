package store

// In-memory B+ tree over record keys — the ordered secondary index behind
// Snapshot.Scan/ScanRange. The seed's scans iterated the whole table map and
// re-sorted the survivors on every call, making every list O(total keys) in
// the metastore; the tree turns a prefix or range scan into a descent plus a
// bounded leaf walk, O(log n + result).
//
// Design notes:
//
//   - The tree indexes *membership* in the table map, not liveness: a key is
//     inserted when its record is created and removed only when the record
//     is dropped from the map (fully dead and unpinned — the same rule the
//     apply path already uses). MVCC consistency therefore costs nothing
//     extra: the tree always holds a superset of the keys live at any
//     readable version, and scans filter each record through record.at(v)
//     exactly as the map walk did.
//   - Values are *record pointers, shared with the table map, so an index
//     hit needs no second map lookup. Records are mutated in place (versions
//     append) and their pointers are stable for the life of the key.
//   - No internal locking: the tree is written only at commit-apply time and
//     WAL replay under the metastore's stateMu write lock, and read under
//     its read lock, inheriting the store's existing synchronization.
//   - Deletes are lazy: the key is removed from its leaf but nodes are never
//     merged. Record removal from the map is rare (a record must be fully
//     dead with no snapshot pinning its history), so sparse decay is bounded
//     and the simplicity keeps the write path O(log n) with no rebalancing.

import "sort"

// btreeMaxKeys is the split threshold per node. 127 keys per leaf keeps
// nodes around two cache pages of string headers while holding tree height
// at 4 for ten million keys.
const btreeMaxKeys = 127

type bnode struct {
	leaf bool
	keys []string
	// vals holds the leaf's records, aligned with keys.
	vals []*record
	// children of an interior node; len(children) == len(keys)+1 and
	// keys[i] is the smallest key reachable under children[i+1].
	children []*bnode
	// next chains leaves in key order for range walks.
	next *bnode
}

type btree struct {
	root *bnode
	size int
}

func newBtree() *btree {
	return &btree{root: &bnode{leaf: true}}
}

// childIdx returns the index of the child covering k: the number of
// separators <= k (equal keys live in the right subtree, matching the
// split convention below).
func (n *bnode) childIdx(k string) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.keys[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insert adds or replaces the record for k.
func (t *btree) insert(k string, v *record) {
	promoted, right := t.insertInto(t.root, k, v)
	if right != nil {
		t.root = &bnode{keys: []string{promoted}, children: []*bnode{t.root, right}}
	}
}

// insertInto descends to the leaf for k and inserts; a node that grows past
// btreeMaxKeys splits, returning the separator and new right sibling for the
// parent to absorb.
func (t *btree) insertInto(n *bnode, k string, v *record) (string, *bnode) {
	if n.leaf {
		i := sort.SearchStrings(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			n.vals[i] = v
			return "", nil
		}
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = v
		t.size++
		if len(n.keys) > btreeMaxKeys {
			return n.splitLeaf()
		}
		return "", nil
	}
	ci := n.childIdx(k)
	promoted, right := t.insertInto(n.children[ci], k, v)
	if right == nil {
		return "", nil
	}
	n.keys = append(n.keys, "")
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = promoted
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.keys) > btreeMaxKeys {
		return n.splitInterior()
	}
	return "", nil
}

// splitLeaf moves the upper half of a leaf into a new right sibling and
// promotes the sibling's first key (keys >= separator go right).
func (n *bnode) splitLeaf() (string, *bnode) {
	mid := len(n.keys) / 2
	right := &bnode{
		leaf: true,
		keys: append([]string(nil), n.keys[mid:]...),
		vals: append([]*record(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	n.next = right
	return right.keys[0], right
}

// splitInterior moves the upper half of an interior node right, promoting
// the middle separator (which belongs to neither half).
func (n *bnode) splitInterior() (string, *bnode) {
	mid := len(n.keys) / 2
	up := n.keys[mid]
	right := &bnode{
		keys:     append([]string(nil), n.keys[mid+1:]...),
		children: append([]*bnode(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return up, right
}

// delete removes k if present. Nodes are never merged (see package comment).
func (t *btree) delete(k string) {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIdx(k)]
	}
	i := sort.SearchStrings(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		t.size--
	}
}

// get returns the record for k, if indexed.
func (t *btree) get(k string) (*record, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIdx(k)]
	}
	i := sort.SearchStrings(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.vals[i], true
	}
	return nil, false
}

// ascend calls fn for every indexed (key, record) with key >= start in
// ascending key order until fn returns false.
func (t *btree) ascend(start string, fn func(k string, r *record) bool) {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIdx(start)]
	}
	i := sort.SearchStrings(n.keys, start)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}
