package store

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// TestCommitHookOrderAndContent proves the commit-hook contract under
// concurrent writers: every applied commit fires exactly one hook call, in
// strictly increasing version order per metastore, after the commit is
// visible, with the transaction's ordered change set and notes attached.
func TestCommitHookOrderAndContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	db, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateMetastore("ms1"); err != nil {
		t.Fatal(err)
	}

	type seen struct {
		version uint64
		key     string
		visible bool
		notes   []any
	}
	var mu sync.Mutex
	var calls []seen
	db.AddCommitHook(func(msID string, v uint64, changes []Change, notes []any) {
		if msID != "ms1" {
			t.Errorf("hook for unexpected metastore %q", msID)
		}
		if len(changes) != 1 {
			t.Errorf("v%d: want 1 change, got %d", v, len(changes))
		}
		// The commit must already be visible: a snapshot at v sees the write.
		visible := false
		if snap, err := db.SnapshotAt(msID, v); err == nil {
			_, visible = snap.Get("tbl", changes[0].Key)
			snap.Close()
		}
		mu.Lock()
		calls = append(calls, seen{version: v, key: changes[0].Key, visible: visible, notes: notes})
		mu.Unlock()
	})

	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	written := make(map[string]string) // key -> note it was annotated with
	var wmu sync.Mutex
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				note := "note:" + key
				_, err := db.Update("ms1", func(tx *Tx) error {
					tx.Put("tbl", key, []byte(key))
					tx.Annotate(note)
					return nil
				})
				if err != nil {
					t.Errorf("update %s: %v", key, err)
					return
				}
				wmu.Lock()
				written[key] = note
				wmu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if len(calls) != writers*perWriter {
		t.Fatalf("hook calls = %d, want %d", len(calls), writers*perWriter)
	}
	keys := make(map[string]bool)
	for i, c := range calls {
		if c.version != uint64(i+1) {
			t.Fatalf("call %d: version %d, want %d (strict per-metastore order)", i, c.version, i+1)
		}
		if !c.visible {
			t.Errorf("v%d: hook ran before the commit was visible", c.version)
		}
		if keys[c.key] {
			t.Errorf("key %s seen twice", c.key)
		}
		keys[c.key] = true
		if len(c.notes) != 1 || c.notes[0] != written[c.key] {
			t.Errorf("v%d: notes = %v, want [%s]", c.version, c.notes, written[c.key])
		}
	}
}

// TestCommitHookSkipsFailuresAndReplay: failed closures, read-only
// transactions, and WAL replay on reopen fire no hooks.
func TestCommitHookSkipsFailuresAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	db, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateMetastore("ms1"); err != nil {
		t.Fatal(err)
	}
	var fired int
	db.AddCommitHook(func(string, uint64, []Change, []any) { fired++ })

	if _, err := db.Update("ms1", func(tx *Tx) error {
		tx.Put("tbl", "k", []byte("v"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Failed closure: no hook.
	if _, err := db.Update("ms1", func(tx *Tx) error {
		tx.Put("tbl", "k2", []byte("v"))
		return fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("want closure error")
	}
	// Read-only transaction: no hook.
	if _, err := db.Update("ms1", func(tx *Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("hooks fired = %d, want 1", fired)
	}
	db.Close()

	// Reopen replays the WAL; replayed commits are history, not new changes.
	db2, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	var replayFired int
	db2.AddCommitHook(func(string, uint64, []Change, []any) { replayFired++ })
	if v, err := db2.Version("ms1"); err != nil || v != 1 {
		t.Fatalf("replayed version = %d, %v", v, err)
	}
	if replayFired != 0 {
		t.Fatalf("hooks fired during replay = %d, want 0", replayFired)
	}
}
