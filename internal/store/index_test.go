package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestBtreeAgainstReference drives the B+ tree with a randomized
// insert/delete/lookup workload and checks every ascend against a sorted
// reference map.
func TestBtreeAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tree := newBtree()
	ref := map[string]*record{}
	key := func() string { return fmt.Sprintf("k%05d", rng.Intn(4000)) }

	check := func(start string) {
		t.Helper()
		want := make([]string, 0, len(ref))
		for k := range ref {
			if k >= start {
				want = append(want, k)
			}
		}
		sort.Strings(want)
		var got []string
		tree.ascend(start, func(k string, r *record) bool {
			if r != ref[k] {
				t.Fatalf("ascend(%q): key %q has wrong record pointer", start, k)
			}
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("ascend(%q): got %d keys, want %d (%s)", start, len(got), len(want), firstDiff(got, want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ascend(%q): %s", start, firstDiff(got, want))
			}
		}
	}

	for i := 0; i < 30000; i++ {
		k := key()
		switch rng.Intn(10) {
		case 0, 1, 2: // delete
			tree.delete(k)
			delete(ref, k)
		default:
			r := &record{}
			tree.insert(k, r)
			ref[k] = r
		}
		if tree.size != len(ref) {
			t.Fatalf("step %d: size %d, want %d", i, tree.size, len(ref))
		}
		if i%5000 == 0 {
			check("")
			check(key())
		}
	}
	check("")
	check("k01")
	check("k03999")
	check("zzz")

	// Early termination.
	n := 0
	tree.ascend("", func(string, *record) bool { n++; return n < 7 })
	if n != 7 && tree.size >= 7 {
		t.Fatalf("ascend stop: visited %d keys", n)
	}
}

func firstDiff(a, b []string) string {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("index %d: %q vs %q", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("lengths %d vs %d", len(a), len(b))
}

// TestPrefixEnd pins the range-bound arithmetic Scan is built on.
func TestPrefixEnd(t *testing.T) {
	cases := map[string]string{
		"":          "",
		"a":         "b",
		"ab":        "ac",
		"a\xff":     "b",
		"\xff\xff":  "",
		"p\x00":     "p\x01",
		"a\xffb":    "a\xffc",
		"a\xff\xff": "b",
	}
	for in, want := range cases {
		if got := PrefixEnd(in); got != want {
			t.Errorf("PrefixEnd(%q) = %q, want %q", in, got, want)
		}
	}
}

// applyRandomWorkload drives the same randomized sequence of commits into
// every provided DB, returning the version after each commit batch.
func applyRandomWorkload(t *testing.T, seed int64, dbs ...*DB) []uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tables := []string{"entity", "name", "child"}
	var versions []uint64
	for commit := 0; commit < 120; commit++ {
		type op struct {
			table, key string
			value      []byte
			del        bool
		}
		var ops []op
		for n := rng.Intn(6) + 1; n > 0; n-- {
			o := op{
				table: tables[rng.Intn(len(tables))],
				key:   fmt.Sprintf("p%d\x00k%03d", rng.Intn(4), rng.Intn(60)),
				del:   rng.Intn(4) == 0,
			}
			if !o.del {
				o.value = []byte(fmt.Sprintf("v%d-%d", commit, rng.Intn(100)))
			}
			ops = append(ops, o)
		}
		var v uint64
		for _, db := range dbs {
			var err error
			v, err = db.Update("ms", func(tx *Tx) error {
				for _, o := range ops {
					if o.del {
						tx.Delete(o.table, o.key)
					} else {
						tx.Put(o.table, o.key, o.value)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("commit %d: %v", commit, err)
			}
		}
		versions = append(versions, v)
	}
	return versions
}

// TestScanDifferential proves the acceptance criterion: index-backed Scan,
// ScanRange, and Count results are byte-identical to the naive full-scan
// path (NoOrderedIndex) across randomized workloads and snapshot versions.
func TestScanDifferential(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			indexed, err := Open(Options{})
			if err != nil {
				t.Fatal(err)
			}
			naive, err := Open(Options{NoOrderedIndex: true})
			if err != nil {
				t.Fatal(err)
			}
			defer indexed.Close()
			defer naive.Close()
			for _, db := range []*DB{indexed, naive} {
				if err := db.CreateMetastore("ms"); err != nil {
					t.Fatal(err)
				}
			}

			versions := applyRandomWorkload(t, seed, indexed, naive)

			probe := []struct{ start, end string }{
				{"", ""},
				{"p0\x00", PrefixEnd("p0\x00")},
				{"p1\x00k01", "p1\x00k04"},
				{"p2\x00k030", ""},
				{"p3\x00k000\x00", PrefixEnd("p3\x00")},
			}
			checkAt := func(v uint64) {
				t.Helper()
				si, err := indexed.SnapshotAt("ms", v)
				if err != nil {
					t.Fatal(err)
				}
				sn, err := naive.SnapshotAt("ms", v)
				if err != nil {
					t.Fatal(err)
				}
				defer si.Close()
				defer sn.Close()
				for _, table := range []string{"entity", "name", "child", "missing"} {
					for _, pfx := range []string{"", "p0\x00", "p3\x00k0"} {
						gi, gn := si.Scan(table, pfx), sn.Scan(table, pfx)
						if !reflect.DeepEqual(gi, gn) {
							t.Fatalf("v%d Scan(%s,%q): indexed %d rows, naive %d rows", v, table, pfx, len(gi), len(gn))
						}
						if ci, cn := si.Count(table, pfx), sn.Count(table, pfx); ci != cn {
							t.Fatalf("v%d Count(%s,%q): %d vs %d", v, table, pfx, ci, cn)
						}
					}
					for _, p := range probe {
						for _, limit := range []int{0, 1, 3, 1000} {
							gi := si.ScanRange(table, p.start, p.end, limit)
							gn := sn.ScanRange(table, p.start, p.end, limit)
							if !reflect.DeepEqual(gi, gn) {
								t.Fatalf("v%d ScanRange(%s,%q,%q,%d): indexed %d rows, naive %d rows",
									v, table, p.start, p.end, limit, len(gi), len(gn))
							}
						}
					}
				}
			}

			// Probe the latest version plus a spread of historical ones.
			last := versions[len(versions)-1]
			checkAt(last)
			for _, v := range []uint64{versions[10], versions[40], versions[80], versions[110]} {
				checkAt(v)
			}
		})
	}
}

// TestTxScanRangeDifferential checks the transaction-level merge (applied
// state + buffered writes) against the naive path, including limits.
func TestTxScanRangeDifferential(t *testing.T) {
	indexed, _ := Open(Options{})
	naive, _ := Open(Options{NoOrderedIndex: true})
	defer indexed.Close()
	defer naive.Close()
	for _, db := range []*DB{indexed, naive} {
		if err := db.CreateMetastore("ms"); err != nil {
			t.Fatal(err)
		}
	}
	applyRandomWorkload(t, 42, indexed, naive)

	rng := rand.New(rand.NewSource(99))
	type bufOp struct {
		key string
		del bool
	}
	var bufOps []bufOp
	for i := 0; i < 40; i++ {
		bufOps = append(bufOps, bufOp{
			key: fmt.Sprintf("p%d\x00k%03d", rng.Intn(4), rng.Intn(60)),
			del: rng.Intn(3) == 0,
		})
	}
	var want map[string][]KV
	for _, db := range []*DB{indexed, naive} {
		db := db
		var scans map[string][]KV
		_, err := db.Update("ms", func(tx *Tx) error {
			// Buffer overlapping writes and deletes, then scan within the tx.
			for _, o := range bufOps {
				if o.del {
					tx.Delete("entity", o.key)
				} else {
					tx.Put("entity", o.key, []byte("txval"))
				}
			}
			scans = map[string][]KV{
				"full":    tx.Scan("entity", ""),
				"prefix":  tx.Scan("entity", "p1\x00"),
				"range":   tx.ScanRange("entity", "p0\x00k010", "p2\x00k050", 0),
				"limited": tx.ScanRange("entity", "", "", 9),
			}
			return fmt.Errorf("abort") // read-only probe; do not commit
		})
		if err == nil {
			t.Fatal("expected abort error")
		}
		if db == indexed {
			want = scans
		} else {
			for name, got := range scans {
				if !reflect.DeepEqual(got, want[name]) {
					t.Fatalf("tx scan %q: indexed and naive differ (%d vs %d rows)", name, len(want[name]), len(got))
				}
			}
		}
	}
}

// TestScanRangeSemantics pins the contract: half-open [start, end), limit,
// and keyset continuation.
func TestScanRangeSemantics(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	if err := db.CreateMetastore("ms"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Update("ms", func(tx *Tx) error {
		for _, k := range []string{"a", "b", "c", "d", "e"} {
			tx.Put("t", k, []byte(k))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s, err := db.Snapshot("ms")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	keys := func(kvs []KV) (out []string) {
		for _, kv := range kvs {
			out = append(out, kv.Key)
		}
		return
	}
	if got := keys(s.ScanRange("t", "b", "d", 0)); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("[b,d): %v", got)
	}
	if got := keys(s.ScanRange("t", "", "", 2)); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("limit 2: %v", got)
	}
	// Keyset continuation: resume after the last key seen.
	page1 := s.ScanRange("t", "", "", 3)
	page2 := s.ScanRange("t", page1[len(page1)-1].Key+"\x00", "", 3)
	if got := append(keys(page1), keys(page2)...); !reflect.DeepEqual(got, []string{"a", "b", "c", "d", "e"}) {
		t.Fatalf("keyset pages: %v", got)
	}
	if got := s.GetBatch("t", []string{"a", "zz", "c"}); string(got[0]) != "a" || got[1] != nil || string(got[2]) != "c" {
		t.Fatalf("GetBatch: %q", got)
	}
}
