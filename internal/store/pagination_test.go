package store

// Satellite coverage for keyset-pagination stability: a cursor opened on one
// snapshot version must return a consistent, duplicate-free, gap-free result
// set while concurrent writers create and drop keys between page fetches.
// The test runs under `go test` and the -race gate alike (make race includes
// ./internal/store/...).

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func TestKeysetPaginationStableUnderWriters(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateMetastore("ms"); err != nil {
		t.Fatal(err)
	}

	// Seed a stable population plus a churn namespace the writers mutate.
	const stable = 500
	if _, err := db.Update("ms", func(tx *Tx) error {
		for i := 0; i < stable; i++ {
			tx.Put("entity", fmt.Sprintf("s%06d", i), []byte("seed"))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// The cursor's snapshot: everything visible now must appear in the
	// paged walk, exactly once, in order — regardless of later writes.
	snap, err := db.Snapshot("ms")
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	want := snap.Scan("entity", "")

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; !stop.Load(); i++ {
				_, err := db.Update("ms", func(tx *Tx) error {
					k := fmt.Sprintf("churn%d-%04d", w, rng.Intn(200))
					if rng.Intn(2) == 0 {
						tx.Put("entity", k, []byte("new"))
					} else {
						tx.Delete("entity", k)
					}
					// Also rewrite a stable key's value (same key, new
					// version) so the old version must stay readable.
					tx.Put("entity", fmt.Sprintf("s%06d", rng.Intn(stable)), []byte(fmt.Sprintf("rewrite%d", i)))
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// Page through the pinned snapshot with a keyset cursor while the
	// writers run.
	var got []KV
	cursor := ""
	for page := 0; ; page++ {
		start := ""
		if cursor != "" {
			start = cursor + "\x00"
		}
		kvs := snap.ScanRange("entity", start, "", 37)
		if len(kvs) == 0 {
			break
		}
		got = append(got, kvs...)
		cursor = kvs[len(kvs)-1].Key
		if page > 10000 {
			t.Fatal("cursor failed to terminate")
		}
	}
	stop.Store(true)
	wg.Wait()

	if len(got) != len(want) {
		t.Fatalf("paged walk returned %d keys, snapshot scan %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key {
			t.Fatalf("page walk diverges at %d: %q vs %q", i, got[i].Key, want[i].Key)
		}
		if string(got[i].Value) != string(want[i].Value) {
			t.Fatalf("key %q: paged value %q, snapshot value %q", got[i].Key, got[i].Value, want[i].Value)
		}
	}

	// And the inverse: a snapshot opened now must agree with a paged walk
	// at the new version, seeing the churn the old cursor did not.
	after, err := db.Snapshot("ms")
	if err != nil {
		t.Fatal(err)
	}
	defer after.Close()
	full := after.Scan("entity", "")
	var paged []KV
	cursor = ""
	for {
		start := ""
		if cursor != "" {
			start = cursor + "\x00"
		}
		kvs := after.ScanRange("entity", start, "", 64)
		if len(kvs) == 0 {
			break
		}
		paged = append(paged, kvs...)
		cursor = kvs[len(kvs)-1].Key
	}
	if len(paged) != len(full) {
		t.Fatalf("post-churn walk: %d keys paged, %d full", len(paged), len(full))
	}
}
