package store

// changeRing is the per-metastore change log: a fixed-capacity ring buffer
// of Changes in ascending version order. The seed kept a plain slice and
// trimmed it by reallocating on every commit once full — an O(ChangeLogSize)
// copy (~164 KB at the default size) on the write hot path. The ring makes
// append O(1): it grows the backing slice only until capacity, then
// overwrites the oldest entry in place.
//
// changeRing is not internally synchronized; all access happens under the
// owning metastore's stateMu.
type changeRing struct {
	buf      []Change
	start    int // index of the oldest entry once the buffer has wrapped
	capacity int
}

func newChangeRing(capacity int) changeRing {
	if capacity < 1 {
		capacity = 1
	}
	return changeRing{capacity: capacity}
}

// push appends c, evicting the oldest entry if the ring is full.
func (r *changeRing) push(c Change) {
	if len(r.buf) < r.capacity {
		r.buf = append(r.buf, c)
		return
	}
	r.buf[r.start] = c
	r.start = (r.start + 1) % r.capacity
}

// len returns the number of retained changes.
func (r *changeRing) len() int { return len(r.buf) }

// at returns the i-th oldest retained change; i must be in [0, len).
func (r *changeRing) at(i int) Change {
	return r.buf[(r.start+i)%len(r.buf)]
}
