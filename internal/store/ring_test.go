package store

import "testing"

func ringVersions(r *changeRing) []uint64 {
	out := make([]uint64, 0, r.len())
	for i := 0; i < r.len(); i++ {
		out = append(out, r.at(i).Version)
	}
	return out
}

func TestChangeRingGrowThenWrap(t *testing.T) {
	r := newChangeRing(4)
	if r.len() != 0 {
		t.Fatalf("empty ring len = %d", r.len())
	}
	// Grow phase: appends until capacity.
	for v := uint64(1); v <= 4; v++ {
		r.push(Change{Version: v})
		if got := r.len(); got != int(v) {
			t.Fatalf("after push %d: len = %d", v, got)
		}
	}
	if got := ringVersions(&r); got[0] != 1 || got[3] != 4 {
		t.Fatalf("grow phase order = %v", got)
	}
	// Wrap phase: each push evicts the oldest, order stays ascending.
	for v := uint64(5); v <= 11; v++ {
		r.push(Change{Version: v})
		if r.len() != 4 {
			t.Fatalf("after wrap push %d: len = %d, want 4", v, r.len())
		}
		got := ringVersions(&r)
		for i, g := range got {
			if want := v - 3 + uint64(i); g != want {
				t.Fatalf("after push %d: ring = %v, want oldest %d ascending", v, got, v-3)
			}
		}
	}
}

func TestChangeRingMinCapacity(t *testing.T) {
	r := newChangeRing(0) // clamps to 1
	r.push(Change{Version: 1})
	r.push(Change{Version: 2})
	if r.len() != 1 || r.at(0).Version != 2 {
		t.Fatalf("capacity-1 ring: len = %d, newest = %+v", r.len(), r.at(0))
	}
}
