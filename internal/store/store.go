// Package store implements the ACID metadata database backing the Unity
// Catalog service (the role played by a MySQL instance in the paper).
//
// The store is a multi-version key-value database organized as
// (metastore, table, key) → value. It provides exactly the semantics the
// paper's Section 4.5 requires:
//
//   - snapshot-isolation reads at metastore granularity: a Snapshot observes
//     the database as of a single metastore version;
//   - serializable writes at metastore granularity: write transactions on a
//     metastore execute one at a time and each successful commit increments
//     the metastore version by one;
//   - optimistic concurrency for cache owners: UpdateCAS commits only if the
//     metastore version still equals the caller's expected version;
//   - a bounded change log per metastore so caches can reconcile selectively
//     (ChangesSince) instead of evicting everything.
//
// To model a remote database in benchmarks, Options can inject artificial
// per-operation latency; the Unity Catalog cache layer exists precisely to
// avoid paying that latency on hot reads.
//
// Durability is provided by an optional JSON-lines write-ahead log replayed
// on Open.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"unitycatalog/internal/faults"
	"unitycatalog/internal/obs"
)

// Common errors.
var (
	ErrNoMetastore      = errors.New("store: metastore does not exist")
	ErrMetastoreExists  = errors.New("store: metastore already exists")
	ErrVersionMismatch  = errors.New("store: metastore version mismatch")
	ErrChangeLogTrimmed = errors.New("store: change log no longer covers requested version")
	ErrClosed           = errors.New("store: database is closed")
)

// Options configures a DB.
type Options struct {
	// WALPath, if non-empty, enables durability: all commits are appended to
	// this file and replayed on Open. Entries are written by a dedicated
	// group-commit writer goroutine (see wal.go).
	WALPath string
	// Sync selects when the WAL writer fsyncs: SyncBatch (default, one
	// fsync per group-commit batch), SyncNever, or SyncAlways.
	Sync SyncPolicy
	// ReadLatency is artificial latency added to every snapshot Get/Scan,
	// modeling a remote database round trip.
	ReadLatency time.Duration
	// CommitLatency is artificial latency added to every commit.
	CommitLatency time.Duration
	// ChangeLogSize bounds the per-metastore change log used by
	// ChangesSince. Zero means the default (8192 entries).
	ChangeLogSize int
	// MaxVersionsPerRecord bounds retained versions per record beyond what
	// active snapshots pin. Zero means the default (4).
	MaxVersionsPerRecord int
	// Faults, if non-nil, is consulted on every database entry point
	// (snapshot open, version read, change-log read, commit) and a non-nil
	// return is injected as that operation's error — modeling a remote DB
	// that times out, throttles, or goes down. It can also be installed
	// after Open with SetFaults.
	Faults *faults.Injector
	// NoOrderedIndex disables the per-table ordered key index, forcing
	// every scan through the full-map fallback path (ablation/baseline:
	// the seed's behavior). Range scans still work, just in O(table size).
	NoOrderedIndex bool
}

const (
	defaultChangeLogSize = 8192
	defaultMaxVersions   = 4
)

// KV is a key/value pair returned by scans.
type KV struct {
	Key   string
	Value []byte
}

// Change describes one mutation applied by a committed transaction.
type Change struct {
	Version uint64 // metastore version that applied this change
	Table   string
	Key     string
	Deleted bool
}

type version struct {
	commit  uint64
	value   []byte
	deleted bool
}

type record struct {
	versions []version // ascending by commit
}

func (r *record) at(v uint64) ([]byte, bool) {
	for i := len(r.versions) - 1; i >= 0; i-- {
		if r.versions[i].commit <= v {
			if r.versions[i].deleted {
				return nil, false
			}
			return r.versions[i].value, true
		}
	}
	return nil, false
}

// pendingCommit is a commit that has been sequenced (assigned a version,
// conflict-checked, enqueued to the WAL) but not yet applied to the
// in-memory state. Transactions sequencing after it read its writes through
// the overlay in Tx.Get/Scan; snapshots never see it (durability before
// visibility).
type pendingCommit struct {
	version uint64
	writes  map[string]map[string]*txWrite
	ordered []Change
}

type metastore struct {
	// mu is the sequencing lock: it serializes conflict detection, the
	// user's transaction function, version assignment, and WAL enqueue —
	// but not WAL I/O, simulated commit latency, or state application,
	// which happen after it is released. That is the commit pipeline: while
	// commit N awaits its batch ack, commit N+1 can already run its
	// transaction function (reading N's writes via the pending overlay).
	mu sync.Mutex
	// nextV is the sequenced version (>= version); guarded by mu.
	nextV uint64

	// stateMu guards the applied state below plus the pending overlay.
	// Lock order: mu before stateMu; applyMu is taken with neither held.
	stateMu sync.RWMutex
	version uint64 // applied (visible) version
	tables  map[string]map[string]*record
	// indexes mirrors each table's key set in an ordered B+ tree so scans
	// are a descent plus bounded walk instead of full-map iteration. nil
	// under the NoOrderedIndex ablation. Membership tracks the table map
	// exactly (records, not liveness): every mutation goes through
	// getOrCreateRecordLocked/removeRecordLocked.
	indexes  map[string]*btree
	changes  changeRing
	snaps    map[uint64]int
	minSnapV uint64
	pending  []*pendingCommit // sequenced but unapplied, ascending version

	// applyMu/applyCond sequence state application: a committer applies
	// only after version newV-1 has been applied, so the state always
	// advances in commit order even though batch acks wake whole groups.
	applyMu   sync.Mutex
	applyCond *sync.Cond
	applied   uint64 // mirrors version; guarded by applyMu
}

// DB is the metadata database.
type DB struct {
	opts Options

	mu     sync.RWMutex
	stores map[string]*metastore
	closed bool

	// wal is the group-commit writer; nil when WALPath is unset, in which
	// case commits never touch a queue or a shared lock on the way out.
	wal *walWriter

	// reads counts snapshot point reads and scans served by the database;
	// the cache layer's tests use it to verify miss coalescing.
	reads atomic.Int64

	// commits/conflicts count Update outcomes; commitNs distributes
	// end-to-end commit latency (sequence through apply). Exposed on
	// /metrics via RegisterMetrics.
	commits   obs.Counter
	conflicts obs.Counter
	commitNs  *obs.Histogram

	// indexScans/fallbackScans split scans by path — ordered index versus
	// full-map iteration (NoOrderedIndex); scanNs distributes scan latency.
	indexScans    obs.Counter
	fallbackScans obs.Counter
	scanNs        *obs.Histogram

	// injector is the active fault injector; swapped atomically so tests
	// can install or clear schedules while operations are in flight.
	injector atomic.Pointer[faults.Injector]

	// hooks observe applied commits (see AddCommitHook). Stored as an
	// immutable slice behind an atomic pointer so the commit path reads it
	// without locks.
	hooks atomic.Pointer[[]CommitHook]
}

// CommitHook observes one applied commit. It runs on the committing
// goroutine after the commit is durable (WAL-acked) and visible, but before
// the apply turnstile admits version+1 — so for a given metastore, hooks
// fire strictly in version order and exactly once per applied commit.
// Failed commits and WAL-replayed commits fire no hooks.
//
// changes is a fresh slice (Version filled in) the hook may retain; notes
// carries whatever the transaction attached via Tx.Annotate, in order.
// Hooks must not block: the metastore's commit pipeline stalls until every
// hook returns. Calling back into the DB for reads is safe; committing to
// the same metastore from a hook deadlocks.
type CommitHook func(msID string, version uint64, changes []Change, notes []any)

// AddCommitHook registers h for every subsequently applied commit on any
// metastore. Hooks cannot be removed; register once per consumer.
func (db *DB) AddCommitHook(h CommitHook) {
	db.mu.Lock()
	defer db.mu.Unlock()
	var cur []CommitHook
	if p := db.hooks.Load(); p != nil {
		cur = *p
	}
	next := make([]CommitHook, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = h
	db.hooks.Store(&next)
}

// SetFaults installs (or, with nil, removes) the fault injector consulted by
// every database entry point. Safe to call concurrently with operations.
func (db *DB) SetFaults(inj *faults.Injector) {
	db.injector.Store(inj)
}

// fault asks the active injector whether op on path should fail.
func (db *DB) fault(op, path string) error {
	return db.injector.Load().Check(op, path)
}

// Open creates a DB. If opts.WALPath exists, its contents are replayed.
func Open(opts Options) (*DB, error) {
	if opts.ChangeLogSize == 0 {
		opts.ChangeLogSize = defaultChangeLogSize
	}
	if opts.MaxVersionsPerRecord == 0 {
		opts.MaxVersionsPerRecord = defaultMaxVersions
	}
	db := &DB{
		opts:     opts,
		stores:   map[string]*metastore{},
		commitNs: obs.NewLatencyHistogram(),
		scanNs:   obs.NewLatencyHistogram(),
	}
	if opts.Faults != nil {
		db.injector.Store(opts.Faults)
	}
	if opts.WALPath != "" {
		if err := db.replayWAL(opts.WALPath); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(opts.WALPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: open wal: %w", err)
		}
		db.wal = newWALWriter(f, opts.Sync, opts.CommitLatency)
	}
	for _, ms := range db.stores {
		ms.nextV = ms.version
		ms.applied = ms.version
	}
	return db, nil
}

// Close marks the database closed, then drains and stops the WAL writer;
// every commit enqueued before Close is flushed (and fsynced per the
// SyncPolicy) before it returns. Safe to call more than once.
func (db *DB) Close() error {
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
	if db.wal != nil {
		return db.wal.close()
	}
	return nil
}

// WALStats reports group-commit batching counters; zero if no WAL is
// configured.
func (db *DB) WALStats() WALStats {
	if db.wal == nil {
		return WALStats{}
	}
	return db.wal.stats()
}

// WALErr returns the WAL's sticky failure, if the write path has been
// poisoned by an I/O error; nil when healthy or when no WAL is configured.
func (db *DB) WALErr() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.err()
}

// CommitStats is a point-in-time readout of the commit path.
type CommitStats struct {
	Commits   int64                 `json:"commits"`
	Conflicts int64                 `json:"conflicts"`
	LatencyNs obs.HistogramSnapshot `json:"latency_ns"`
}

// CommitStats snapshots commit counters and latency quantiles.
func (db *DB) CommitStats() CommitStats {
	return CommitStats{
		Commits:   db.commits.Load(),
		Conflicts: db.conflicts.Load(),
		LatencyNs: db.commitNs.Snapshot(),
	}
}

// RegisterMetrics exposes the store's counters and histograms on r. Call
// once per registry per DB.
func (db *DB) RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("uc_store_commits_total", "Committed write transactions.", &db.commits)
	r.RegisterCounter("uc_store_commit_conflicts_total", "Commits rejected by version CAS.", &db.conflicts)
	r.RegisterHistogram("uc_store_commit_seconds", "End-to-end commit latency (sequence through apply).", db.commitNs)
	r.RegisterCounterFunc("uc_store_reads_total", "Snapshot point reads and scans served.", db.ReadCount)
	r.RegisterCounter("uc_store_index_scans_total", "Scans served by the ordered key index.", &db.indexScans)
	r.RegisterCounter("uc_store_index_fallback_scans_total", "Scans served by full-map iteration (no ordered index).", &db.fallbackScans)
	r.RegisterHistogram("uc_store_scan_seconds", "Latency of snapshot range scans.", db.scanNs)
	r.RegisterGaugeFunc("uc_store_index_keys", "Keys held across all ordered indexes.", func() float64 {
		return float64(db.IndexKeyCount())
	})
	if db.wal == nil {
		return
	}
	r.RegisterCounter("uc_store_wal_batches_total", "Group-commit batches written.", &db.wal.batches)
	r.RegisterCounter("uc_store_wal_entries_total", "WAL entries across all batches.", &db.wal.entries)
	r.RegisterCounter("uc_store_wal_syncs_total", "fsync calls issued by the WAL writer.", &db.wal.syncs)
	r.RegisterGauge("uc_store_wal_max_batch", "Largest group-commit batch observed.", &db.wal.maxBatch)
	r.RegisterHistogram("uc_store_wal_batch_size", "Entries per group-commit batch.", db.wal.batchSizes)
	r.RegisterHistogram("uc_store_wal_fsync_seconds", "Latency of WAL fsync calls.", db.wal.fsyncNs)
	r.RegisterGaugeFunc("uc_store_wal_failed", "1 when the WAL write path is poisoned by an I/O error.", func() float64 {
		if db.wal.err() != nil {
			return 1
		}
		return 0
	})
}

func (db *DB) metastore(id string) (*metastore, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	ms, ok := db.stores[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoMetastore, id)
	}
	return ms, nil
}

// CreateMetastore registers a new metastore namespace at version 0.
func (db *DB) CreateMetastore(id string) error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if _, ok := db.stores[id]; ok {
		db.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrMetastoreExists, id)
	}
	// Enqueue the WAL entry before releasing db.mu: no commit can observe
	// the new metastore until db.mu is released, so the lifecycle entry is
	// guaranteed to precede every commit to it in the log.
	req, err := db.logMeta(walEntry{Op: "create_metastore", Metastore: id})
	if err != nil {
		db.mu.Unlock()
		return err
	}
	db.stores[id] = newMetastore(db.opts.ChangeLogSize, db.opts.NoOrderedIndex)
	db.mu.Unlock()
	if req != nil {
		<-req.done
		return req.err
	}
	return nil
}

func newMetastore(changeLogSize int, noIndex bool) *metastore {
	m := &metastore{
		tables:  map[string]map[string]*record{},
		snaps:   map[uint64]int{},
		changes: newChangeRing(changeLogSize),
	}
	if !noIndex {
		m.indexes = map[string]*btree{}
	}
	m.applyCond = sync.NewCond(&m.applyMu)
	return m
}

// getOrCreateRecordLocked returns the record for (table, key), creating the
// table map, the record, and the record's ordered-index entry as needed.
// Every record creation funnels through here so the index cannot drift from
// the table map. Caller holds stateMu (or has exclusive access, as in WAL
// replay before the DB is shared).
func (m *metastore) getOrCreateRecordLocked(table, key string) *record {
	t, ok := m.tables[table]
	if !ok {
		t = map[string]*record{}
		m.tables[table] = t
	}
	r, ok := t[key]
	if !ok {
		r = &record{}
		t[key] = r
		if m.indexes != nil {
			idx, ok := m.indexes[table]
			if !ok {
				idx = newBtree()
				m.indexes[table] = idx
			}
			idx.insert(key, r)
		}
	}
	return r
}

// removeRecordLocked drops a fully-dead record from the table map and the
// ordered index together. Caller holds stateMu.
func (m *metastore) removeRecordLocked(table, key string) {
	delete(m.tables[table], key)
	if m.indexes != nil {
		if idx := m.indexes[table]; idx != nil {
			idx.delete(key)
		}
	}
}

// DropMetastore removes a metastore and all its data.
func (db *DB) DropMetastore(id string) error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if _, ok := db.stores[id]; !ok {
		db.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoMetastore, id)
	}
	req, err := db.logMeta(walEntry{Op: "drop_metastore", Metastore: id})
	if err != nil {
		db.mu.Unlock()
		return err
	}
	delete(db.stores, id)
	db.mu.Unlock()
	if req != nil {
		<-req.done
		return req.err
	}
	return nil
}

// Metastores lists metastore IDs in lexical order.
func (db *DB) Metastores() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.stores))
	for id := range db.stores {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Version returns the current committed version of a metastore.
func (db *DB) Version(msID string) (uint64, error) {
	if err := db.fault("db.version", msID); err != nil {
		return 0, err
	}
	ms, err := db.metastore(msID)
	if err != nil {
		return 0, err
	}
	ms.stateMu.RLock()
	defer ms.stateMu.RUnlock()
	return ms.version, nil
}

// Snapshot opens a read-only view of the metastore at its current version.
// The caller must Close the snapshot to release version pins.
func (db *DB) Snapshot(msID string) (*Snapshot, error) {
	if err := db.fault("db.snapshot", msID); err != nil {
		return nil, err
	}
	ms, err := db.metastore(msID)
	if err != nil {
		return nil, err
	}
	ms.stateMu.Lock()
	v := ms.version
	ms.snaps[v]++
	ms.updateMinSnapLocked()
	ms.stateMu.Unlock()
	return &Snapshot{db: db, ms: ms, Version: v}, nil
}

// SnapshotAt opens a read-only view at an explicit version, which must be at
// or below the current version. Used by tests and the cache layer.
func (db *DB) SnapshotAt(msID string, v uint64) (*Snapshot, error) {
	if err := db.fault("db.snapshot", msID); err != nil {
		return nil, err
	}
	ms, err := db.metastore(msID)
	if err != nil {
		return nil, err
	}
	ms.stateMu.Lock()
	defer ms.stateMu.Unlock()
	if v > ms.version {
		return nil, fmt.Errorf("store: snapshot version %d beyond current %d", v, ms.version)
	}
	ms.snaps[v]++
	ms.updateMinSnapLocked()
	return &Snapshot{db: db, ms: ms, Version: v}, nil
}

func (m *metastore) updateMinSnapLocked() {
	min := ^uint64(0)
	for v := range m.snaps {
		if v < min {
			min = v
		}
	}
	if len(m.snaps) == 0 {
		min = m.version
	}
	m.minSnapV = min
}

// Snapshot is a consistent read-only view of one metastore.
type Snapshot struct {
	db      *DB
	ms      *metastore
	Version uint64
	closed  bool
}

// Get returns the value of (table, key) as of the snapshot version.
func (s *Snapshot) Get(table, key string) ([]byte, bool) {
	s.db.simulateRead()
	s.ms.stateMu.RLock()
	defer s.ms.stateMu.RUnlock()
	t, ok := s.ms.tables[table]
	if !ok {
		return nil, false
	}
	r, ok := t[key]
	if !ok {
		return nil, false
	}
	return r.at(s.Version)
}

// Scan returns all live (key, value) pairs in table whose key starts with
// prefix, in ascending key order, as of the snapshot version.
func (s *Snapshot) Scan(table, prefix string) []KV {
	return s.ScanRange(table, prefix, PrefixEnd(prefix), 0)
}

// ScanRange returns up to limit live (key, value) pairs in table with keys
// in [start, end), in ascending key order, as of the snapshot version. An
// empty end means unbounded; limit <= 0 means unlimited. With the keyset
// convention — pass the last key seen plus "\x00" as the next start — it is
// the store-level cursor primitive for paginated listings.
func (s *Snapshot) ScanRange(table, start, end string, limit int) []KV {
	s.db.simulateRead()
	t0 := time.Now()
	s.ms.stateMu.RLock()
	var out []KV
	s.db.scanLiveLocked(s.ms, table, start, end, s.Version, func(k string, v []byte) bool {
		out = append(out, KV{Key: k, Value: v})
		return limit <= 0 || len(out) < limit
	})
	s.ms.stateMu.RUnlock()
	s.db.scanNs.ObserveDuration(time.Since(t0))
	return out
}

// Count returns the number of live keys in table with the given prefix.
func (s *Snapshot) Count(table, prefix string) int {
	s.db.simulateRead()
	s.ms.stateMu.RLock()
	defer s.ms.stateMu.RUnlock()
	n := 0
	s.db.scanLiveLocked(s.ms, table, prefix, PrefixEnd(prefix), s.Version, func(string, []byte) bool {
		n++
		return true
	})
	return n
}

// GetBatch returns the values of keys in table as of the snapshot version,
// aligned with keys (nil where absent or deleted), in one simulated round
// trip — the multi-get a real database would serve as a single query.
func (s *Snapshot) GetBatch(table string, keys []string) [][]byte {
	s.db.simulateRead()
	s.ms.stateMu.RLock()
	defer s.ms.stateMu.RUnlock()
	out := make([][]byte, len(keys))
	t, ok := s.ms.tables[table]
	if !ok {
		return out
	}
	for i, k := range keys {
		if r, ok := t[k]; ok {
			if v, live := r.at(s.Version); live {
				out[i] = v
			}
		}
	}
	return out
}

// PrefixEnd returns the smallest key greater than every key with the given
// prefix, or "" (unbounded) when no such key exists. Scan(prefix) is exactly
// ScanRange(prefix, PrefixEnd(prefix), 0).
func PrefixEnd(prefix string) string {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xff {
			return prefix[:i] + string(prefix[i]+1)
		}
	}
	return ""
}

// scanLiveLocked is the one scan implementation behind Snapshot.Scan/Count/
// ScanRange and Tx.Scan/ScanRange: it walks live (key, value) pairs of
// table at version v with keys in [start, end) in ascending order, calling
// fn until it returns false. The ordered index serves it as a descent plus
// bounded walk; without one (NoOrderedIndex) it falls back to the seed's
// full-map iteration and sort. Caller holds ms.stateMu.
func (db *DB) scanLiveLocked(ms *metastore, table, start, end string, v uint64, fn func(k string, val []byte) bool) {
	t, ok := ms.tables[table]
	if !ok {
		return
	}
	if ms.indexes != nil {
		db.indexScans.Inc()
		idx := ms.indexes[table]
		if idx == nil {
			return
		}
		idx.ascend(start, func(k string, r *record) bool {
			if end != "" && k >= end {
				return false
			}
			if val, live := r.at(v); live {
				return fn(k, val)
			}
			return true
		})
		return
	}
	db.fallbackScans.Inc()
	var keys []string
	for k := range t {
		if k >= start && (end == "" || k < end) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if val, live := t[k].at(v); live {
			if !fn(k, val) {
				return
			}
		}
	}
}

// IndexKeyCount returns the total number of keys across all ordered
// indexes; zero under NoOrderedIndex.
func (db *DB) IndexKeyCount() int {
	return db.indexSize(func(string) bool { return true })
}

// IndexSize returns the number of keys the ordered index holds for one
// table, summed across metastores.
func (db *DB) IndexSize(table string) int {
	return db.indexSize(func(t string) bool { return t == table })
}

func (db *DB) indexSize(want func(table string) bool) int {
	db.mu.RLock()
	stores := make([]*metastore, 0, len(db.stores))
	for _, ms := range db.stores {
		stores = append(stores, ms)
	}
	db.mu.RUnlock()
	n := 0
	for _, ms := range stores {
		ms.stateMu.RLock()
		for t, idx := range ms.indexes {
			if want(t) {
				n += idx.size
			}
		}
		ms.stateMu.RUnlock()
	}
	return n
}

// Close releases the snapshot's version pin. Safe to call multiple times.
func (s *Snapshot) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.ms.stateMu.Lock()
	defer s.ms.stateMu.Unlock()
	if n := s.ms.snaps[s.Version]; n <= 1 {
		delete(s.ms.snaps, s.Version)
	} else {
		s.ms.snaps[s.Version] = n - 1
	}
	s.ms.updateMinSnapLocked()
}

// Tx is a read-write transaction. Reads observe the transaction's snapshot
// plus its own uncommitted writes. Tx is not safe for concurrent use.
type Tx struct {
	db      *DB
	ms      *metastore
	base    uint64
	writes  map[string]map[string]*txWrite // table -> key -> write
	ordered []Change                       // write order for the change log/WAL
	notes   []any                          // opaque annotations for commit hooks
}

// Annotate attaches an opaque note to the transaction. If the transaction
// commits, every registered CommitHook receives the notes in the order they
// were added; on retry (e.g. a CAS conflict re-running the closure) the
// fresh transaction starts with no notes. Callers use this to stage
// higher-level event metadata inside the closure so it is published
// if-and-only-if the commit applies.
func (tx *Tx) Annotate(note any) { tx.notes = append(tx.notes, note) }

type txWrite struct {
	value   []byte
	deleted bool
}

// Get returns the value of (table, key) as seen by the transaction: its own
// buffered writes, then any sequenced-but-unapplied commit's writes (the
// pipeline overlay), then the applied state at the transaction's base
// version. A commit moving from the overlay into the applied state keeps
// the same visible value, so repeated reads are stable.
func (tx *Tx) Get(table, key string) ([]byte, bool) {
	if t, ok := tx.writes[table]; ok {
		if w, ok := t[key]; ok {
			if w.deleted {
				return nil, false
			}
			return w.value, true
		}
	}
	tx.ms.stateMu.RLock()
	defer tx.ms.stateMu.RUnlock()
	for i := len(tx.ms.pending) - 1; i >= 0; i-- {
		pc := tx.ms.pending[i]
		if pc.version > tx.base {
			continue
		}
		if t, ok := pc.writes[table]; ok {
			if w, ok := t[key]; ok {
				if w.deleted {
					return nil, false
				}
				return w.value, true
			}
		}
	}
	t, ok := tx.ms.tables[table]
	if !ok {
		return nil, false
	}
	r, ok := t[key]
	if !ok {
		return nil, false
	}
	return r.at(tx.base)
}

// Put buffers a write of (table, key) = value.
func (tx *Tx) Put(table, key string, value []byte) {
	cp := make([]byte, len(value))
	copy(cp, value)
	tx.write(table, key, &txWrite{value: cp})
}

// Delete buffers a deletion of (table, key).
func (tx *Tx) Delete(table, key string) {
	tx.write(table, key, &txWrite{deleted: true})
}

func (tx *Tx) write(table, key string, w *txWrite) {
	t, ok := tx.writes[table]
	if !ok {
		t = map[string]*txWrite{}
		tx.writes[table] = t
	}
	if _, seen := t[key]; !seen {
		tx.ordered = append(tx.ordered, Change{Table: table, Key: key})
	}
	t[key] = w
	// Keep ordered entry's Deleted flag in sync with the final write.
	for i := range tx.ordered {
		if tx.ordered[i].Table == table && tx.ordered[i].Key == key {
			tx.ordered[i].Deleted = w.deleted
		}
	}
}

// Write is a buffered mutation exposed by Writes.
type Write struct {
	Table   string
	Key     string
	Value   []byte
	Deleted bool
}

// Writes returns the transaction's buffered mutations in first-write order,
// with each key's final value. The cache layer uses this to install
// committed values without re-reading the database.
func (tx *Tx) Writes() []Write {
	out := make([]Write, 0, len(tx.ordered))
	for _, c := range tx.ordered {
		w := tx.writes[c.Table][c.Key]
		out = append(out, Write{Table: c.Table, Key: c.Key, Value: w.value, Deleted: w.deleted})
	}
	return out
}

// Scan returns live pairs with the key prefix, merging buffered writes and
// the pipeline overlay over the applied state at the base version.
func (tx *Tx) Scan(table, prefix string) []KV {
	return tx.ScanRange(table, prefix, PrefixEnd(prefix), 0)
}

// ScanRange is Snapshot.ScanRange semantics ([start, end), ascending, up to
// limit) as seen by the transaction: buffered writes, then the pipeline
// overlay, then the applied state at the base version. The overlay keys are
// sorted once and merge-joined with the ordered base walk, so early
// termination at limit does not visit the rest of the range.
func (tx *Tx) ScanRange(table, start, end string, limit int) []KV {
	inRange := func(k string) bool { return k >= start && (end == "" || k < end) }

	tx.ms.stateMu.RLock()
	// Overlay: sequenced-but-unapplied commits at or below base, oldest to
	// newest so later writes win, then the transaction's own writes.
	overlay := map[string]*txWrite{}
	for _, pc := range tx.ms.pending {
		if pc.version > tx.base {
			continue
		}
		if t, ok := pc.writes[table]; ok {
			for k, w := range t {
				if inRange(k) {
					overlay[k] = w
				}
			}
		}
	}
	for k, w := range tx.writes[table] {
		if inRange(k) {
			overlay[k] = w
		}
	}
	okeys := make([]string, 0, len(overlay))
	for k := range overlay {
		okeys = append(okeys, k)
	}
	sort.Strings(okeys)

	var out []KV
	emit := func(k string, v []byte) bool {
		out = append(out, KV{Key: k, Value: v})
		return limit <= 0 || len(out) < limit
	}
	oi := 0
	more := true
	tx.db.scanLiveLocked(tx.ms, table, start, end, tx.base, func(k string, val []byte) bool {
		for oi < len(okeys) && okeys[oi] < k {
			if w := overlay[okeys[oi]]; !w.deleted {
				if !emit(okeys[oi], w.value) {
					more = false
					return false
				}
			}
			oi++
		}
		if oi < len(okeys) && okeys[oi] == k {
			w := overlay[okeys[oi]]
			oi++
			if w.deleted {
				return true
			}
			more = emit(k, w.value)
			return more
		}
		more = emit(k, val)
		return more
	})
	if more {
		for ; oi < len(okeys); oi++ {
			if w := overlay[okeys[oi]]; !w.deleted {
				if !emit(okeys[oi], w.value) {
					break
				}
			}
		}
	}
	tx.ms.stateMu.RUnlock()
	return out
}

// Update runs fn inside a serializable write transaction on the metastore.
// On success it returns the new metastore version. If fn returns an error,
// nothing is applied.
func (db *DB) Update(msID string, fn func(tx *Tx) error) (uint64, error) {
	return db.update(obs.SpanContext{}, msID, nil, fn)
}

// UpdateT is Update with a trace context: the commit records a
// "store.commit" span with sequence/wal/apply phase children.
func (db *DB) UpdateT(sc obs.SpanContext, msID string, fn func(tx *Tx) error) (uint64, error) {
	return db.update(sc, msID, nil, fn)
}

// UpdateCAS is Update conditioned on the metastore version still being
// expected at commit time; otherwise it returns ErrVersionMismatch without
// running fn. This implements the optimistic write protocol the cache uses.
func (db *DB) UpdateCAS(msID string, expected uint64, fn func(tx *Tx) error) (uint64, error) {
	return db.update(obs.SpanContext{}, msID, &expected, fn)
}

// UpdateCAST is UpdateCAS with a trace context.
func (db *DB) UpdateCAST(sc obs.SpanContext, msID string, expected uint64, fn func(tx *Tx) error) (uint64, error) {
	return db.update(sc, msID, &expected, fn)
}

// update is the group-commit write path. It runs in four stages:
//
//  1. Sequence (under ms.mu): conflict-detect against the sequenced version
//     nextV, run fn, assign newV = nextV+1, install the write set in the
//     pending overlay, and enqueue the WAL request — O(write set) work with
//     no I/O, no fsync, and no simulated latency under the lock.
//  2. Encode + await ack (no locks): JSON-encode the WAL entry, then wait
//     for the writer goroutine's batch ack. N concurrent commits share one
//     flush, one fsync, and one simulated CommitLatency round trip. With no
//     WAL, each commit pays its own round trip, concurrently.
//  3. Await turn (applyMu): state is applied strictly in sequence order.
//  4. Apply (stateMu): install the writes, push the change log, bump the
//     visible version — durability before visibility, as in the seed.
//
// A WAL failure fails this commit and poisons the write path (see wal.go);
// the pending entry is dropped and the visible version never reaches newV.
func (db *DB) update(sc obs.SpanContext, msID string, expected *uint64, fn func(tx *Tx) error) (uint64, error) {
	// Fault check before any transaction state exists, modeling a failed
	// connection: a faulted commit never partially applies.
	if err := db.fault("db.commit", msID); err != nil {
		return 0, err
	}
	if db.wal != nil {
		if err := db.wal.err(); err != nil {
			return 0, err
		}
	}
	ms, err := db.metastore(msID)
	if err != nil {
		return 0, err
	}

	t0 := time.Now()
	sc, commitSpan := sc.StartDetail("store.commit", msID)
	defer commitSpan.End()

	// Stage 1: sequence.
	_, seqSpan := sc.Start("store.sequence")
	ms.mu.Lock()
	base := ms.nextV
	if expected != nil && base != *expected {
		ms.mu.Unlock()
		seqSpan.End()
		db.conflicts.Inc()
		return base, fmt.Errorf("%w: have %d, expected %d", ErrVersionMismatch, base, *expected)
	}
	tx := &Tx{db: db, ms: ms, base: base, writes: map[string]map[string]*txWrite{}}
	if err := fn(tx); err != nil {
		ms.mu.Unlock()
		seqSpan.End()
		return base, err
	}
	if len(tx.ordered) == 0 {
		ms.mu.Unlock()
		seqSpan.End()
		return base, nil // read-only transaction: no version bump
	}
	newV := base + 1
	ms.nextV = newV
	pc := &pendingCommit{version: newV, writes: tx.writes, ordered: tx.ordered}
	ms.stateMu.Lock()
	ms.pending = append(ms.pending, pc)
	ms.stateMu.Unlock()
	var req *walReq
	if db.wal != nil {
		req = newWALReq()
		if err := db.wal.submit(req); err != nil {
			ms.dropPending(newV)
			ms.mu.Unlock()
			seqSpan.End()
			return base, err
		}
	}
	ms.mu.Unlock()
	seqSpan.End()

	// Stage 2: encode off every lock, then await the batch ack. The
	// "store.wal" span covers enqueue→fsync: it opened when the request
	// entered the queue (sequencing) and closes at the batch ack.
	if req != nil {
		_, walSpan := sc.Start("store.wal")
		entry := walEntry{Op: "commit", Metastore: msID, Version: newV}
		entry.Writes = make([]walWrite, 0, len(tx.ordered))
		for _, c := range tx.ordered {
			w := tx.writes[c.Table][c.Key]
			entry.Writes = append(entry.Writes, walWrite{Table: c.Table, Key: c.Key, Value: w.value, Deleted: w.deleted})
		}
		req.enc, req.encErr = json.Marshal(entry)
		close(req.ready)
		<-req.done
		walSpan.End()
		if req.err != nil {
			ms.dropPending(newV)
			return base, req.err
		}
	} else {
		db.simulateCommit() // own round trip, overlapping with other commits
	}

	// Stages 3+4 share one "store.apply" span: waiting for our turn in the
	// apply turnstile plus installing the writes.
	_, applySpan := sc.Start("store.apply")
	defer applySpan.End()

	// Stage 3: await our turn. Acked predecessors always apply (a WAL
	// failure fails every later commit too, so we only wait on successes).
	ms.applyMu.Lock()
	for ms.applied != newV-1 {
		ms.applyCond.Wait()
	}
	ms.applyMu.Unlock()

	// Stage 4: apply under stateMu — durability before visibility.
	ms.stateMu.Lock()
	if len(ms.pending) == 0 || ms.pending[0] != pc {
		ms.stateMu.Unlock()
		panic("store: commit pipeline applied out of sequence")
	}
	for _, c := range tx.ordered {
		w := tx.writes[c.Table][c.Key]
		r := ms.getOrCreateRecordLocked(c.Table, c.Key)
		r.versions = append(r.versions, version{commit: newV, value: w.value, deleted: w.deleted})
		db.pruneLocked(ms, r)
		if w.deleted && allDeleted(r) {
			// A fully dead record whose history is no longer pinned can go.
			if r.versions[0].commit > ms.minSnapV {
				// keep: pinned history may still need the tombstone
			} else if len(r.versions) == 1 && ms.minSnapV >= newV {
				ms.removeRecordLocked(c.Table, c.Key)
			}
		}
		ms.changes.push(Change{Version: newV, Table: c.Table, Key: c.Key, Deleted: w.deleted})
	}
	ms.pending = ms.pending[1:]
	ms.version = newV
	ms.stateMu.Unlock()

	// Commit hooks: after durability and visibility, before the turnstile
	// admits newV+1 — per-metastore hooks see strictly increasing versions.
	if hp := db.hooks.Load(); hp != nil && len(*hp) > 0 {
		applied := make([]Change, len(tx.ordered))
		for i, c := range tx.ordered {
			applied[i] = Change{Version: newV, Table: c.Table, Key: c.Key, Deleted: c.Deleted}
		}
		for _, h := range *hp {
			h(msID, newV, applied, tx.notes)
		}
	}

	ms.applyMu.Lock()
	ms.applied = newV
	ms.applyCond.Broadcast()
	ms.applyMu.Unlock()
	db.commits.Inc()
	db.commitNs.ObserveDuration(time.Since(t0))
	return newV, nil
}

// dropPending removes the sequenced-but-unapplied commit v after its WAL
// write failed or the database closed under it. Later sequenced commits are
// guaranteed to fail too (the failure is sticky), so the applied version
// simply never reaches v and no applier waits on it.
func (ms *metastore) dropPending(v uint64) {
	ms.stateMu.Lock()
	for i, pc := range ms.pending {
		if pc.version == v {
			ms.pending = append(ms.pending[:i], ms.pending[i+1:]...)
			break
		}
	}
	ms.stateMu.Unlock()
}

func allDeleted(r *record) bool {
	return len(r.versions) > 0 && r.versions[len(r.versions)-1].deleted
}

// pruneLocked drops versions that are neither among the most recent
// MaxVersionsPerRecord nor visible to any active snapshot.
func (db *DB) pruneLocked(ms *metastore, r *record) {
	max := db.opts.MaxVersionsPerRecord
	if len(r.versions) <= max {
		return
	}
	// pin is the oldest version any active snapshot may still read;
	// with no snapshots every historical version is unreachable.
	pin := ^uint64(0)
	if len(ms.snaps) > 0 {
		pin = ms.minSnapV
	}
	// snapCut is the index of the newest version at or below pin: all
	// snapshots at or above pin are satisfied by it, so everything older
	// can go.
	snapCut := 0
	for i, v := range r.versions {
		if v.commit <= pin {
			snapCut = i
		}
	}
	cut := len(r.versions) - max
	if cut > snapCut {
		cut = snapCut
	}
	if cut > 0 {
		r.versions = append([]version(nil), r.versions[cut:]...)
	}
}

// ChangesSince returns the changes applied after version v, in commit order.
// If the change log no longer covers v, it returns ErrChangeLogTrimmed and
// the caller must fall back to full reconciliation.
func (db *DB) ChangesSince(msID string, v uint64) ([]Change, error) {
	if err := db.fault("db.changes", msID); err != nil {
		return nil, err
	}
	ms, err := db.metastore(msID)
	if err != nil {
		return nil, err
	}
	ms.stateMu.RLock()
	defer ms.stateMu.RUnlock()
	if v >= ms.version {
		return nil, nil
	}
	n := ms.changes.len()
	// The log must contain every change in (v, current]; the oldest
	// retained change being newer than v+1 means some were trimmed.
	first := ^uint64(0)
	if n > 0 {
		first = ms.changes.at(0).Version
	}
	if v+1 < first {
		return nil, ErrChangeLogTrimmed
	}
	// Versions ascend through the ring, so binary-search the cut point.
	i := sort.Search(n, func(i int) bool { return ms.changes.at(i).Version > v })
	if i == n {
		return nil, nil
	}
	out := make([]Change, 0, n-i)
	for ; i < n; i++ {
		out = append(out, ms.changes.at(i))
	}
	return out, nil
}

func (db *DB) simulateRead() {
	db.reads.Add(1)
	if db.opts.ReadLatency > 0 {
		time.Sleep(db.opts.ReadLatency)
	}
}

// ReadCount returns the number of snapshot Get/Scan/Count operations the
// database has served since Open. Each one pays ReadLatency, so the counter
// measures exactly the work the metadata cache exists to avoid.
func (db *DB) ReadCount() int64 { return db.reads.Load() }

func (db *DB) simulateCommit() {
	if db.opts.CommitLatency > 0 {
		time.Sleep(db.opts.CommitLatency)
	}
}
