// Package store implements the ACID metadata database backing the Unity
// Catalog service (the role played by a MySQL instance in the paper).
//
// The store is a multi-version key-value database organized as
// (metastore, table, key) → value. It provides exactly the semantics the
// paper's Section 4.5 requires:
//
//   - snapshot-isolation reads at metastore granularity: a Snapshot observes
//     the database as of a single metastore version;
//   - serializable writes at metastore granularity: write transactions on a
//     metastore execute one at a time and each successful commit increments
//     the metastore version by one;
//   - optimistic concurrency for cache owners: UpdateCAS commits only if the
//     metastore version still equals the caller's expected version;
//   - a bounded change log per metastore so caches can reconcile selectively
//     (ChangesSince) instead of evicting everything.
//
// To model a remote database in benchmarks, Options can inject artificial
// per-operation latency; the Unity Catalog cache layer exists precisely to
// avoid paying that latency on hot reads.
//
// Durability is provided by an optional JSON-lines write-ahead log replayed
// on Open.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"unitycatalog/internal/faults"
)

// Common errors.
var (
	ErrNoMetastore      = errors.New("store: metastore does not exist")
	ErrMetastoreExists  = errors.New("store: metastore already exists")
	ErrVersionMismatch  = errors.New("store: metastore version mismatch")
	ErrChangeLogTrimmed = errors.New("store: change log no longer covers requested version")
	ErrClosed           = errors.New("store: database is closed")
)

// Options configures a DB.
type Options struct {
	// WALPath, if non-empty, enables durability: all commits are appended to
	// this file and replayed on Open.
	WALPath string
	// ReadLatency is artificial latency added to every snapshot Get/Scan,
	// modeling a remote database round trip.
	ReadLatency time.Duration
	// CommitLatency is artificial latency added to every commit.
	CommitLatency time.Duration
	// ChangeLogSize bounds the per-metastore change log used by
	// ChangesSince. Zero means the default (8192 entries).
	ChangeLogSize int
	// MaxVersionsPerRecord bounds retained versions per record beyond what
	// active snapshots pin. Zero means the default (4).
	MaxVersionsPerRecord int
	// Faults, if non-nil, is consulted on every database entry point
	// (snapshot open, version read, change-log read, commit) and a non-nil
	// return is injected as that operation's error — modeling a remote DB
	// that times out, throttles, or goes down. It can also be installed
	// after Open with SetFaults.
	Faults *faults.Injector
}

const (
	defaultChangeLogSize = 8192
	defaultMaxVersions   = 4
)

// KV is a key/value pair returned by scans.
type KV struct {
	Key   string
	Value []byte
}

// Change describes one mutation applied by a committed transaction.
type Change struct {
	Version uint64 // metastore version that applied this change
	Table   string
	Key     string
	Deleted bool
}

type version struct {
	commit  uint64
	value   []byte
	deleted bool
}

type record struct {
	versions []version // ascending by commit
}

func (r *record) at(v uint64) ([]byte, bool) {
	for i := len(r.versions) - 1; i >= 0; i-- {
		if r.versions[i].commit <= v {
			if r.versions[i].deleted {
				return nil, false
			}
			return r.versions[i].value, true
		}
	}
	return nil, false
}

type metastore struct {
	mu       sync.Mutex // serializes write transactions
	stateMu  sync.RWMutex
	version  uint64
	tables   map[string]map[string]*record
	changes  []Change // ring-buffered change log
	snaps    map[uint64]int
	minSnapV uint64
}

// DB is the metadata database.
type DB struct {
	opts Options

	mu     sync.RWMutex
	stores map[string]*metastore
	closed bool

	walMu sync.Mutex
	wal   *os.File
	walW  *bufio.Writer

	// reads counts snapshot point reads and scans served by the database;
	// the cache layer's tests use it to verify miss coalescing.
	reads atomic.Int64

	// injector is the active fault injector; swapped atomically so tests
	// can install or clear schedules while operations are in flight.
	injector atomic.Pointer[faults.Injector]
}

// SetFaults installs (or, with nil, removes) the fault injector consulted by
// every database entry point. Safe to call concurrently with operations.
func (db *DB) SetFaults(inj *faults.Injector) {
	db.injector.Store(inj)
}

// fault asks the active injector whether op on path should fail.
func (db *DB) fault(op, path string) error {
	return db.injector.Load().Check(op, path)
}

// Open creates a DB. If opts.WALPath exists, its contents are replayed.
func Open(opts Options) (*DB, error) {
	if opts.ChangeLogSize == 0 {
		opts.ChangeLogSize = defaultChangeLogSize
	}
	if opts.MaxVersionsPerRecord == 0 {
		opts.MaxVersionsPerRecord = defaultMaxVersions
	}
	db := &DB{opts: opts, stores: map[string]*metastore{}}
	if opts.Faults != nil {
		db.injector.Store(opts.Faults)
	}
	if opts.WALPath != "" {
		if err := db.replayWAL(opts.WALPath); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(opts.WALPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: open wal: %w", err)
		}
		db.wal = f
		db.walW = bufio.NewWriter(f)
	}
	return db, nil
}

// Close flushes the WAL and marks the database closed.
func (db *DB) Close() error {
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
	db.walMu.Lock()
	defer db.walMu.Unlock()
	if db.wal != nil {
		if err := db.walW.Flush(); err != nil {
			return err
		}
		return db.wal.Close()
	}
	return nil
}

func (db *DB) metastore(id string) (*metastore, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	ms, ok := db.stores[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoMetastore, id)
	}
	return ms, nil
}

// CreateMetastore registers a new metastore namespace at version 0.
func (db *DB) CreateMetastore(id string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if _, ok := db.stores[id]; ok {
		return fmt.Errorf("%w: %s", ErrMetastoreExists, id)
	}
	db.stores[id] = newMetastore()
	db.logWAL(walEntry{Op: "create_metastore", Metastore: id})
	return nil
}

func newMetastore() *metastore {
	return &metastore{tables: map[string]map[string]*record{}, snaps: map[uint64]int{}}
}

// DropMetastore removes a metastore and all its data.
func (db *DB) DropMetastore(id string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if _, ok := db.stores[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNoMetastore, id)
	}
	delete(db.stores, id)
	db.logWAL(walEntry{Op: "drop_metastore", Metastore: id})
	return nil
}

// Metastores lists metastore IDs in lexical order.
func (db *DB) Metastores() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.stores))
	for id := range db.stores {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Version returns the current committed version of a metastore.
func (db *DB) Version(msID string) (uint64, error) {
	if err := db.fault("db.version", msID); err != nil {
		return 0, err
	}
	ms, err := db.metastore(msID)
	if err != nil {
		return 0, err
	}
	ms.stateMu.RLock()
	defer ms.stateMu.RUnlock()
	return ms.version, nil
}

// Snapshot opens a read-only view of the metastore at its current version.
// The caller must Close the snapshot to release version pins.
func (db *DB) Snapshot(msID string) (*Snapshot, error) {
	if err := db.fault("db.snapshot", msID); err != nil {
		return nil, err
	}
	ms, err := db.metastore(msID)
	if err != nil {
		return nil, err
	}
	ms.stateMu.Lock()
	v := ms.version
	ms.snaps[v]++
	ms.updateMinSnapLocked()
	ms.stateMu.Unlock()
	return &Snapshot{db: db, ms: ms, Version: v}, nil
}

// SnapshotAt opens a read-only view at an explicit version, which must be at
// or below the current version. Used by tests and the cache layer.
func (db *DB) SnapshotAt(msID string, v uint64) (*Snapshot, error) {
	if err := db.fault("db.snapshot", msID); err != nil {
		return nil, err
	}
	ms, err := db.metastore(msID)
	if err != nil {
		return nil, err
	}
	ms.stateMu.Lock()
	defer ms.stateMu.Unlock()
	if v > ms.version {
		return nil, fmt.Errorf("store: snapshot version %d beyond current %d", v, ms.version)
	}
	ms.snaps[v]++
	ms.updateMinSnapLocked()
	return &Snapshot{db: db, ms: ms, Version: v}, nil
}

func (m *metastore) updateMinSnapLocked() {
	min := ^uint64(0)
	for v := range m.snaps {
		if v < min {
			min = v
		}
	}
	if len(m.snaps) == 0 {
		min = m.version
	}
	m.minSnapV = min
}

// Snapshot is a consistent read-only view of one metastore.
type Snapshot struct {
	db      *DB
	ms      *metastore
	Version uint64
	closed  bool
}

// Get returns the value of (table, key) as of the snapshot version.
func (s *Snapshot) Get(table, key string) ([]byte, bool) {
	s.db.simulateRead()
	s.ms.stateMu.RLock()
	defer s.ms.stateMu.RUnlock()
	t, ok := s.ms.tables[table]
	if !ok {
		return nil, false
	}
	r, ok := t[key]
	if !ok {
		return nil, false
	}
	return r.at(s.Version)
}

// Scan returns all live (key, value) pairs in table whose key starts with
// prefix, in ascending key order, as of the snapshot version.
func (s *Snapshot) Scan(table, prefix string) []KV {
	s.db.simulateRead()
	s.ms.stateMu.RLock()
	defer s.ms.stateMu.RUnlock()
	t, ok := s.ms.tables[table]
	if !ok {
		return nil
	}
	var out []KV
	for k, r := range t {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		if v, live := r.at(s.Version); live {
			out = append(out, KV{Key: k, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Count returns the number of live keys in table with the given prefix.
func (s *Snapshot) Count(table, prefix string) int {
	s.db.simulateRead()
	s.ms.stateMu.RLock()
	defer s.ms.stateMu.RUnlock()
	t, ok := s.ms.tables[table]
	if !ok {
		return 0
	}
	n := 0
	for k, r := range t {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		if _, live := r.at(s.Version); live {
			n++
		}
	}
	return n
}

// Close releases the snapshot's version pin. Safe to call multiple times.
func (s *Snapshot) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.ms.stateMu.Lock()
	defer s.ms.stateMu.Unlock()
	if n := s.ms.snaps[s.Version]; n <= 1 {
		delete(s.ms.snaps, s.Version)
	} else {
		s.ms.snaps[s.Version] = n - 1
	}
	s.ms.updateMinSnapLocked()
}

// Tx is a read-write transaction. Reads observe the transaction's snapshot
// plus its own uncommitted writes. Tx is not safe for concurrent use.
type Tx struct {
	db      *DB
	ms      *metastore
	base    uint64
	writes  map[string]map[string]*txWrite // table -> key -> write
	ordered []Change                       // write order for the change log/WAL
}

type txWrite struct {
	value   []byte
	deleted bool
}

// Get returns the value of (table, key) as seen by the transaction.
func (tx *Tx) Get(table, key string) ([]byte, bool) {
	if t, ok := tx.writes[table]; ok {
		if w, ok := t[key]; ok {
			if w.deleted {
				return nil, false
			}
			return w.value, true
		}
	}
	t, ok := tx.ms.tables[table]
	if !ok {
		return nil, false
	}
	r, ok := t[key]
	if !ok {
		return nil, false
	}
	return r.at(tx.base)
}

// Put buffers a write of (table, key) = value.
func (tx *Tx) Put(table, key string, value []byte) {
	cp := make([]byte, len(value))
	copy(cp, value)
	tx.write(table, key, &txWrite{value: cp})
}

// Delete buffers a deletion of (table, key).
func (tx *Tx) Delete(table, key string) {
	tx.write(table, key, &txWrite{deleted: true})
}

func (tx *Tx) write(table, key string, w *txWrite) {
	t, ok := tx.writes[table]
	if !ok {
		t = map[string]*txWrite{}
		tx.writes[table] = t
	}
	if _, seen := t[key]; !seen {
		tx.ordered = append(tx.ordered, Change{Table: table, Key: key})
	}
	t[key] = w
	// Keep ordered entry's Deleted flag in sync with the final write.
	for i := range tx.ordered {
		if tx.ordered[i].Table == table && tx.ordered[i].Key == key {
			tx.ordered[i].Deleted = w.deleted
		}
	}
}

// Write is a buffered mutation exposed by Writes.
type Write struct {
	Table   string
	Key     string
	Value   []byte
	Deleted bool
}

// Writes returns the transaction's buffered mutations in first-write order,
// with each key's final value. The cache layer uses this to install
// committed values without re-reading the database.
func (tx *Tx) Writes() []Write {
	out := make([]Write, 0, len(tx.ordered))
	for _, c := range tx.ordered {
		w := tx.writes[c.Table][c.Key]
		out = append(out, Write{Table: c.Table, Key: c.Key, Value: w.value, Deleted: w.deleted})
	}
	return out
}

// Scan returns live pairs with the key prefix, merging buffered writes over
// the snapshot.
func (tx *Tx) Scan(table, prefix string) []KV {
	merged := map[string][]byte{}
	if t, ok := tx.ms.tables[table]; ok {
		for k, r := range t {
			if !strings.HasPrefix(k, prefix) {
				continue
			}
			if v, live := r.at(tx.base); live {
				merged[k] = v
			}
		}
	}
	if t, ok := tx.writes[table]; ok {
		for k, w := range t {
			if !strings.HasPrefix(k, prefix) {
				continue
			}
			if w.deleted {
				delete(merged, k)
			} else {
				merged[k] = w.value
			}
		}
	}
	out := make([]KV, 0, len(merged))
	for k, v := range merged {
		out = append(out, KV{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Update runs fn inside a serializable write transaction on the metastore.
// On success it returns the new metastore version. If fn returns an error,
// nothing is applied.
func (db *DB) Update(msID string, fn func(tx *Tx) error) (uint64, error) {
	return db.update(msID, nil, fn)
}

// UpdateCAS is Update conditioned on the metastore version still being
// expected at commit time; otherwise it returns ErrVersionMismatch without
// running fn. This implements the optimistic write protocol the cache uses.
func (db *DB) UpdateCAS(msID string, expected uint64, fn func(tx *Tx) error) (uint64, error) {
	return db.update(msID, &expected, fn)
}

func (db *DB) update(msID string, expected *uint64, fn func(tx *Tx) error) (uint64, error) {
	// Fault check before any transaction state exists, modeling a failed
	// connection: a faulted commit never partially applies.
	if err := db.fault("db.commit", msID); err != nil {
		return 0, err
	}
	ms, err := db.metastore(msID)
	if err != nil {
		return 0, err
	}
	ms.mu.Lock() // serialize writers
	defer ms.mu.Unlock()

	ms.stateMu.RLock()
	base := ms.version
	ms.stateMu.RUnlock()
	if expected != nil && base != *expected {
		return base, fmt.Errorf("%w: have %d, expected %d", ErrVersionMismatch, base, *expected)
	}

	tx := &Tx{db: db, ms: ms, base: base, writes: map[string]map[string]*txWrite{}}
	if err := fn(tx); err != nil {
		return base, err
	}
	if len(tx.ordered) == 0 {
		return base, nil // read-only transaction: no version bump
	}

	db.simulateCommit()
	newV := base + 1

	// Durability before visibility.
	entry := walEntry{Op: "commit", Metastore: msID, Version: newV}
	for _, c := range tx.ordered {
		w := tx.writes[c.Table][c.Key]
		entry.Writes = append(entry.Writes, walWrite{Table: c.Table, Key: c.Key, Value: w.value, Deleted: w.deleted})
	}
	db.logWAL(entry)

	ms.stateMu.Lock()
	defer ms.stateMu.Unlock()
	for _, c := range tx.ordered {
		w := tx.writes[c.Table][c.Key]
		t, ok := ms.tables[c.Table]
		if !ok {
			t = map[string]*record{}
			ms.tables[c.Table] = t
		}
		r, ok := t[c.Key]
		if !ok {
			r = &record{}
			t[c.Key] = r
		}
		r.versions = append(r.versions, version{commit: newV, value: w.value, deleted: w.deleted})
		db.pruneLocked(ms, r)
		if w.deleted && allDeleted(r) {
			// A fully dead record whose history is no longer pinned can go.
			if r.versions[0].commit > ms.minSnapV {
				// keep: pinned history may still need the tombstone
			} else if len(r.versions) == 1 && ms.minSnapV >= newV {
				delete(t, c.Key)
			}
		}
		c.Version = newV
		ms.changes = append(ms.changes, Change{Version: newV, Table: c.Table, Key: c.Key, Deleted: w.deleted})
	}
	if over := len(ms.changes) - db.opts.ChangeLogSize; over > 0 {
		ms.changes = append([]Change(nil), ms.changes[over:]...)
	}
	ms.version = newV
	return newV, nil
}

func allDeleted(r *record) bool {
	return len(r.versions) > 0 && r.versions[len(r.versions)-1].deleted
}

// pruneLocked drops versions that are neither among the most recent
// MaxVersionsPerRecord nor visible to any active snapshot.
func (db *DB) pruneLocked(ms *metastore, r *record) {
	max := db.opts.MaxVersionsPerRecord
	if len(r.versions) <= max {
		return
	}
	// pin is the oldest version any active snapshot may still read;
	// with no snapshots every historical version is unreachable.
	pin := ^uint64(0)
	if len(ms.snaps) > 0 {
		pin = ms.minSnapV
	}
	// snapCut is the index of the newest version at or below pin: all
	// snapshots at or above pin are satisfied by it, so everything older
	// can go.
	snapCut := 0
	for i, v := range r.versions {
		if v.commit <= pin {
			snapCut = i
		}
	}
	cut := len(r.versions) - max
	if cut > snapCut {
		cut = snapCut
	}
	if cut > 0 {
		r.versions = append([]version(nil), r.versions[cut:]...)
	}
}

// ChangesSince returns the changes applied after version v, in commit order.
// If the change log no longer covers v, it returns ErrChangeLogTrimmed and
// the caller must fall back to full reconciliation.
func (db *DB) ChangesSince(msID string, v uint64) ([]Change, error) {
	if err := db.fault("db.changes", msID); err != nil {
		return nil, err
	}
	ms, err := db.metastore(msID)
	if err != nil {
		return nil, err
	}
	ms.stateMu.RLock()
	defer ms.stateMu.RUnlock()
	if v >= ms.version {
		return nil, nil
	}
	if len(ms.changes) == 0 || ms.changes[0].Version > v+1 {
		// The log must contain every change in (v, current]; the oldest
		// retained change being newer than v+1 means some were trimmed.
		if v+1 < firstVersion(ms.changes) {
			return nil, ErrChangeLogTrimmed
		}
	}
	var out []Change
	for _, c := range ms.changes {
		if c.Version > v {
			out = append(out, c)
		}
	}
	return out, nil
}

func firstVersion(cs []Change) uint64 {
	if len(cs) == 0 {
		return ^uint64(0)
	}
	return cs[0].Version
}

func (db *DB) simulateRead() {
	db.reads.Add(1)
	if db.opts.ReadLatency > 0 {
		time.Sleep(db.opts.ReadLatency)
	}
}

// ReadCount returns the number of snapshot Get/Scan/Count operations the
// database has served since Open. Each one pays ReadLatency, so the counter
// measures exactly the work the metadata cache exists to avoid.
func (db *DB) ReadCount() int64 { return db.reads.Load() }

func (db *DB) simulateCommit() {
	if db.opts.CommitLatency > 0 {
		time.Sleep(db.opts.CommitLatency)
	}
}

// --- WAL ---

type walWrite struct {
	Table   string `json:"t"`
	Key     string `json:"k"`
	Value   []byte `json:"v,omitempty"`
	Deleted bool   `json:"d,omitempty"`
}

type walEntry struct {
	Op        string     `json:"op"`
	Metastore string     `json:"ms"`
	Version   uint64     `json:"ver,omitempty"`
	Writes    []walWrite `json:"w,omitempty"`
}

func (db *DB) logWAL(e walEntry) {
	if db.wal == nil {
		return
	}
	db.walMu.Lock()
	defer db.walMu.Unlock()
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	db.walW.Write(b)
	db.walW.WriteByte('\n')
	db.walW.Flush()
}

func (db *DB) replayWAL(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: replay wal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var pending []walEntry
	for sc.Scan() {
		var e walEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			// A torn final line is the expected crash artifact: the commit
			// never became durable, so stop replay here. Corruption
			// followed by more valid entries is real damage and fatal.
			if !sc.Scan() {
				break
			}
			return fmt.Errorf("store: corrupt wal entry mid-log: %w", err)
		}
		pending = append(pending, e)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for _, e := range pending {
		switch e.Op {
		case "create_metastore":
			if _, ok := db.stores[e.Metastore]; !ok {
				db.stores[e.Metastore] = newMetastore()
			}
		case "drop_metastore":
			delete(db.stores, e.Metastore)
		case "commit":
			ms, ok := db.stores[e.Metastore]
			if !ok {
				continue
			}
			for _, w := range e.Writes {
				t, ok := ms.tables[w.Table]
				if !ok {
					t = map[string]*record{}
					ms.tables[w.Table] = t
				}
				r, ok := t[w.Key]
				if !ok {
					r = &record{}
					t[w.Key] = r
				}
				r.versions = append(r.versions, version{commit: e.Version, value: w.Value, deleted: w.Deleted})
			}
			ms.version = e.Version
			for _, w := range e.Writes {
				ms.changes = append(ms.changes, Change{Version: e.Version, Table: w.Table, Key: w.Key, Deleted: w.Deleted})
			}
		}
	}
	return nil
}
