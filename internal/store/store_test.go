package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func mustOpen(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestCreateDropMetastore(t *testing.T) {
	db := mustOpen(t, Options{})
	if err := db.CreateMetastore("m1"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateMetastore("m1"); !errors.Is(err, ErrMetastoreExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if got := db.Metastores(); len(got) != 1 || got[0] != "m1" {
		t.Fatalf("metastores = %v", got)
	}
	if err := db.DropMetastore("m1"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropMetastore("m1"); !errors.Is(err, ErrNoMetastore) {
		t.Fatalf("double drop: %v", err)
	}
	if _, err := db.Snapshot("m1"); !errors.Is(err, ErrNoMetastore) {
		t.Fatalf("snapshot dropped: %v", err)
	}
}

func TestBasicPutGet(t *testing.T) {
	db := mustOpen(t, Options{})
	db.CreateMetastore("m")
	v, err := db.Update("m", func(tx *Tx) error {
		tx.Put("t", "k1", []byte("v1"))
		tx.Put("t", "k2", []byte("v2"))
		return nil
	})
	if err != nil || v != 1 {
		t.Fatalf("update: v=%d err=%v", v, err)
	}
	snap, _ := db.Snapshot("m")
	defer snap.Close()
	if got, ok := snap.Get("t", "k1"); !ok || string(got) != "v1" {
		t.Fatalf("get k1 = %q, %v", got, ok)
	}
	if kvs := snap.Scan("t", ""); len(kvs) != 2 || kvs[0].Key != "k1" || kvs[1].Key != "k2" {
		t.Fatalf("scan = %v", kvs)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	db := mustOpen(t, Options{})
	db.CreateMetastore("m")
	db.Update("m", func(tx *Tx) error { tx.Put("t", "k", []byte("old")); return nil })

	snap, _ := db.Snapshot("m")
	defer snap.Close()

	db.Update("m", func(tx *Tx) error { tx.Put("t", "k", []byte("new")); return nil })
	db.Update("m", func(tx *Tx) error { tx.Put("t", "k2", []byte("x")); return nil })

	// The old snapshot still observes the old state.
	if got, _ := snap.Get("t", "k"); string(got) != "old" {
		t.Fatalf("snapshot read = %q, want old", got)
	}
	if _, ok := snap.Get("t", "k2"); ok {
		t.Fatal("snapshot should not see later insert")
	}
	// A fresh snapshot sees the new state.
	snap2, _ := db.Snapshot("m")
	defer snap2.Close()
	if got, _ := snap2.Get("t", "k"); string(got) != "new" {
		t.Fatalf("fresh snapshot read = %q, want new", got)
	}
}

func TestDeleteVisibility(t *testing.T) {
	db := mustOpen(t, Options{})
	db.CreateMetastore("m")
	db.Update("m", func(tx *Tx) error { tx.Put("t", "k", []byte("v")); return nil })
	snap, _ := db.Snapshot("m")
	defer snap.Close()
	db.Update("m", func(tx *Tx) error { tx.Delete("t", "k"); return nil })
	if _, ok := snap.Get("t", "k"); !ok {
		t.Fatal("pinned snapshot should still see the record")
	}
	snap2, _ := db.Snapshot("m")
	defer snap2.Close()
	if _, ok := snap2.Get("t", "k"); ok {
		t.Fatal("new snapshot should not see deleted record")
	}
	if n := snap2.Count("t", ""); n != 0 {
		t.Fatalf("count after delete = %d", n)
	}
}

func TestUpdateRollbackOnError(t *testing.T) {
	db := mustOpen(t, Options{})
	db.CreateMetastore("m")
	boom := errors.New("boom")
	v, err := db.Update("m", func(tx *Tx) error {
		tx.Put("t", "k", []byte("v"))
		return boom
	})
	if !errors.Is(err, boom) || v != 0 {
		t.Fatalf("update: v=%d err=%v", v, err)
	}
	snap, _ := db.Snapshot("m")
	defer snap.Close()
	if _, ok := snap.Get("t", "k"); ok {
		t.Fatal("aborted write must not be visible")
	}
	if ver, _ := db.Version("m"); ver != 0 {
		t.Fatalf("version after abort = %d", ver)
	}
}

func TestReadOnlyTransactionDoesNotBumpVersion(t *testing.T) {
	db := mustOpen(t, Options{})
	db.CreateMetastore("m")
	v, err := db.Update("m", func(tx *Tx) error { tx.Get("t", "k"); return nil })
	if err != nil || v != 0 {
		t.Fatalf("read-only update: v=%d err=%v", v, err)
	}
}

func TestUpdateCAS(t *testing.T) {
	db := mustOpen(t, Options{})
	db.CreateMetastore("m")
	db.Update("m", func(tx *Tx) error { tx.Put("t", "k", []byte("1")); return nil })

	// CAS at the right version succeeds.
	v, err := db.UpdateCAS("m", 1, func(tx *Tx) error { tx.Put("t", "k", []byte("2")); return nil })
	if err != nil || v != 2 {
		t.Fatalf("cas: v=%d err=%v", v, err)
	}
	// CAS at a stale version fails without running fn.
	ran := false
	_, err = db.UpdateCAS("m", 1, func(tx *Tx) error { ran = true; return nil })
	if !errors.Is(err, ErrVersionMismatch) || ran {
		t.Fatalf("stale cas: err=%v ran=%v", err, ran)
	}
}

func TestTxReadsOwnWrites(t *testing.T) {
	db := mustOpen(t, Options{})
	db.CreateMetastore("m")
	db.Update("m", func(tx *Tx) error { tx.Put("t", "a", []byte("1")); return nil })
	_, err := db.Update("m", func(tx *Tx) error {
		tx.Put("t", "b", []byte("2"))
		if got, ok := tx.Get("t", "b"); !ok || string(got) != "2" {
			return fmt.Errorf("tx should read own write, got %q %v", got, ok)
		}
		tx.Delete("t", "a")
		if _, ok := tx.Get("t", "a"); ok {
			return errors.New("tx should observe own delete")
		}
		kvs := tx.Scan("t", "")
		if len(kvs) != 1 || kvs[0].Key != "b" {
			return fmt.Errorf("tx scan = %v", kvs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChangesSince(t *testing.T) {
	db := mustOpen(t, Options{})
	db.CreateMetastore("m")
	for i := 0; i < 5; i++ {
		db.Update("m", func(tx *Tx) error {
			tx.Put("t", fmt.Sprintf("k%d", i), []byte("v"))
			return nil
		})
	}
	cs, err := db.ChangesSince("m", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 || cs[0].Version != 3 || cs[2].Version != 5 {
		t.Fatalf("changes = %+v", cs)
	}
	if cs, err := db.ChangesSince("m", 5); err != nil || cs != nil {
		t.Fatalf("up-to-date changes = %v, %v", cs, err)
	}
}

func TestChangesSinceTrimmed(t *testing.T) {
	db := mustOpen(t, Options{ChangeLogSize: 3})
	db.CreateMetastore("m")
	for i := 0; i < 10; i++ {
		db.Update("m", func(tx *Tx) error { tx.Put("t", fmt.Sprintf("k%d", i), nil); return nil })
	}
	if _, err := db.ChangesSince("m", 1); !errors.Is(err, ErrChangeLogTrimmed) {
		t.Fatalf("trimmed: %v", err)
	}
	// Recent range still works.
	if cs, err := db.ChangesSince("m", 8); err != nil || len(cs) != 2 {
		t.Fatalf("recent changes = %v, %v", cs, err)
	}
}

func TestSerializableWritesConcurrent(t *testing.T) {
	db := mustOpen(t, Options{})
	db.CreateMetastore("m")
	db.Update("m", func(tx *Tx) error { tx.Put("t", "counter", []byte{0}); return nil })

	const writers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				db.Update("m", func(tx *Tx) error {
					b, _ := tx.Get("t", "counter")
					tx.Put("t", "counter", []byte{b[0] + 1})
					return nil
				})
			}
		}()
	}
	wg.Wait()
	snap, _ := db.Snapshot("m")
	defer snap.Close()
	b, _ := snap.Get("t", "counter")
	if int(b[0]) != (writers*each)%256 {
		t.Fatalf("counter = %d, want %d (lost updates)", b[0], (writers*each)%256)
	}
	if v, _ := db.Version("m"); v != writers*each+1 {
		t.Fatalf("version = %d, want %d", v, writers*each+1)
	}
}

func TestWALPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	db, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateMetastore("m")
	db.Update("m", func(tx *Tx) error { tx.Put("t", "k", []byte("v1")); return nil })
	db.Update("m", func(tx *Tx) error { tx.Put("t", "k", []byte("v2")); tx.Put("t", "k2", []byte("x")); return nil })
	db.Update("m", func(tx *Tx) error { tx.Delete("t", "k2"); return nil })
	db.CreateMetastore("gone")
	db.DropMetastore("gone")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Metastores(); len(got) != 1 || got[0] != "m" {
		t.Fatalf("replayed metastores = %v", got)
	}
	if v, _ := db2.Version("m"); v != 3 {
		t.Fatalf("replayed version = %d", v)
	}
	snap, _ := db2.Snapshot("m")
	defer snap.Close()
	if got, _ := snap.Get("t", "k"); string(got) != "v2" {
		t.Fatalf("replayed k = %q", got)
	}
	if _, ok := snap.Get("t", "k2"); ok {
		t.Fatal("replayed k2 should be deleted")
	}
	// Writes continue from the replayed version.
	if v, _ := db2.Update("m", func(tx *Tx) error { tx.Put("t", "k3", nil); return nil }); v != 4 {
		t.Fatalf("post-replay version = %d", v)
	}
}

func TestVersionPruning(t *testing.T) {
	db := mustOpen(t, Options{MaxVersionsPerRecord: 2})
	db.CreateMetastore("m")
	for i := 0; i < 10; i++ {
		db.Update("m", func(tx *Tx) error { tx.Put("t", "k", []byte{byte(i)}); return nil })
	}
	ms, _ := db.metastore("m")
	ms.stateMu.RLock()
	n := len(ms.tables["t"]["k"].versions)
	ms.stateMu.RUnlock()
	if n > 2 {
		t.Fatalf("retained %d versions, want <= 2", n)
	}
	snap, _ := db.Snapshot("m")
	defer snap.Close()
	if b, _ := snap.Get("t", "k"); b[0] != 9 {
		t.Fatalf("latest = %d", b[0])
	}
}

func TestSnapshotPinsVersions(t *testing.T) {
	db := mustOpen(t, Options{MaxVersionsPerRecord: 1})
	db.CreateMetastore("m")
	db.Update("m", func(tx *Tx) error { tx.Put("t", "k", []byte("v1")); return nil })
	snap, _ := db.Snapshot("m") // pins version 1
	for i := 0; i < 5; i++ {
		db.Update("m", func(tx *Tx) error { tx.Put("t", "k", []byte(fmt.Sprintf("v%d", i+2))); return nil })
	}
	if got, _ := snap.Get("t", "k"); string(got) != "v1" {
		t.Fatalf("pinned read = %q, want v1", got)
	}
	snap.Close()
}

func TestWritesAccessor(t *testing.T) {
	db := mustOpen(t, Options{})
	db.CreateMetastore("m")
	var ws []Write
	db.Update("m", func(tx *Tx) error {
		tx.Put("t", "a", []byte("1"))
		tx.Put("t", "a", []byte("2")) // overwrite within tx
		tx.Delete("t", "b")
		ws = tx.Writes()
		return nil
	})
	if len(ws) != 2 {
		t.Fatalf("writes = %+v", ws)
	}
	if ws[0].Key != "a" || string(ws[0].Value) != "2" || ws[0].Deleted {
		t.Fatalf("write a = %+v", ws[0])
	}
	if ws[1].Key != "b" || !ws[1].Deleted {
		t.Fatalf("write b = %+v", ws[1])
	}
}

// TestQuickSnapshotStability property-tests that a snapshot's view never
// changes regardless of subsequent writes.
func TestQuickSnapshotStability(t *testing.T) {
	f := func(keys []uint8, extra []uint8) bool {
		if len(keys) == 0 {
			keys = []uint8{1}
		}
		db, _ := Open(Options{})
		defer db.Close()
		db.CreateMetastore("m")
		db.Update("m", func(tx *Tx) error {
			for _, k := range keys {
				tx.Put("t", fmt.Sprintf("k%d", k), []byte{k})
			}
			return nil
		})
		snap, _ := db.Snapshot("m")
		defer snap.Close()
		before := snap.Scan("t", "")
		for _, k := range extra {
			db.Update("m", func(tx *Tx) error {
				tx.Put("t", fmt.Sprintf("k%d", k), []byte{k + 1})
				tx.Delete("t", fmt.Sprintf("k%d", k/2))
				return nil
			})
		}
		after := snap.Scan("t", "")
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i].Key != after[i].Key || string(before[i].Value) != string(after[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWALTornFinalLineTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	db, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateMetastore("m")
	db.Update("m", func(tx *Tx) error { tx.Put("t", "k", []byte("durable")); return nil })
	db.Close()

	// Simulate a crash mid-append: a torn, unparsable final line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"commit","ms":"m","ver":2,"w":[{"t":"t","k":"lost","v":`)
	f.Close()

	db2, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatalf("torn final line should be tolerated: %v", err)
	}
	defer db2.Close()
	snap, _ := db2.Snapshot("m")
	defer snap.Close()
	if got, _ := snap.Get("t", "k"); string(got) != "durable" {
		t.Fatalf("durable data lost: %q", got)
	}
	if _, ok := snap.Get("t", "lost"); ok {
		t.Fatal("torn commit must not be applied")
	}
	if v, _ := db2.Version("m"); v != 1 {
		t.Fatalf("version = %d", v)
	}
}

func TestWALMidLogCorruptionFatal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	db, _ := Open(Options{WALPath: path})
	db.CreateMetastore("m")
	db.Update("m", func(tx *Tx) error { tx.Put("t", "k", []byte("v")); return nil })
	db.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the FIRST line, keeping valid entries after it.
	corrupted := append([]byte("{broken json\n"), data...)
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{WALPath: path}); err == nil {
		t.Fatal("mid-log corruption should be fatal")
	}
}
