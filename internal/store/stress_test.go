package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestConcurrentWritersStress is the -race gate for the commit pipeline: 64
// writers spread across 4 metastores mix Update and UpdateCAS. It asserts
// the pipeline's core invariants:
//
//   - per-metastore versions are handed out contiguously — the sorted set of
//     versions returned to successful committers is exactly 1..K, so no
//     commit was lost and none was double-assigned;
//   - read-modify-write increments are serializable (a shared counter equals
//     the number of successful increments, i.e. pipelined commits observe
//     their predecessors' writes);
//   - CAS conflicts are retried and eventually succeed.
func TestConcurrentWritersStress(t *testing.T) {
	db, err := Open(Options{WALPath: filepath.Join(t.TempDir(), "wal")})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const (
		metastores = 4
		writers    = 64 // 16 per metastore
		iters      = 25
	)
	msIDs := make([]string, metastores)
	for i := range msIDs {
		msIDs[i] = fmt.Sprintf("ms%d", i)
		if err := db.CreateMetastore(msIDs[i]); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	versions := make(map[string][]uint64) // metastore -> versions acked to committers
	increments := make(map[string]int)    // metastore -> successful counter bumps

	incr := func(tx *Tx) error {
		var n uint64
		if raw, ok := tx.Get("counters", "shared"); ok {
			fmt.Sscanf(string(raw), "%d", &n)
		}
		tx.Put("counters", "shared", []byte(fmt.Sprintf("%d", n+1)))
		return nil
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ms := msIDs[w%metastores]
			for i := 0; i < iters; i++ {
				var v uint64
				var err error
				if i%2 == 0 {
					v, err = db.Update(ms, incr)
				} else {
					// CAS against the freshest version, retrying on true
					// conflicts like a real optimistic committer.
					for {
						base, verr := db.Version(ms)
						if verr != nil {
							err = verr
							break
						}
						v, err = db.UpdateCAS(ms, base, incr)
						if !errors.Is(err, ErrVersionMismatch) {
							break
						}
					}
				}
				if err != nil {
					t.Errorf("writer %d ms %s: %v", w, ms, err)
					return
				}
				mu.Lock()
				versions[ms] = append(versions[ms], v)
				increments[ms]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for _, ms := range msIDs {
		vs := versions[ms]
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		for i, v := range vs {
			if v != uint64(i+1) {
				t.Fatalf("ms %s: version sequence broken at index %d: got %d (versions must be exactly 1..%d)", ms, i, v, len(vs))
			}
		}
		final, err := db.Version(ms)
		if err != nil {
			t.Fatal(err)
		}
		if final != uint64(len(vs)) {
			t.Fatalf("ms %s: final version %d != %d acked commits", ms, final, len(vs))
		}
		snap, err := db.Snapshot(ms)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := snap.Get("counters", "shared")
		snap.Close()
		var n int
		fmt.Sscanf(string(raw), "%d", &n)
		if n != increments[ms] {
			t.Fatalf("ms %s: counter = %d, want %d (lost update)", ms, n, increments[ms])
		}
	}
}

// TestCASNoSpuriousConflicts: a single writer chaining UpdateCAS from each
// returned version must never see ErrVersionMismatch — conflicts may only be
// reported when another commit truly intervened.
func TestCASNoSpuriousConflicts(t *testing.T) {
	db, err := Open(Options{WALPath: filepath.Join(t.TempDir(), "wal")})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateMetastore("m"); err != nil {
		t.Fatal(err)
	}
	var v uint64
	for i := 0; i < 200; i++ {
		nv, err := db.UpdateCAS("m", v, func(tx *Tx) error {
			tx.Put("t", "k", []byte(fmt.Sprintf("%d", i)))
			return nil
		})
		if errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("iteration %d: spurious version mismatch at expected=%d", i, v)
		}
		if err != nil {
			t.Fatal(err)
		}
		v = nv
	}
}

// TestCrossMetastoreIndependence: without a WAL, commits must skip the
// group-commit queue entirely, so commit-latency sleeps in one metastore
// never delay another — and concurrent committers to the SAME metastore
// overlap their round trips too. 16 writers (8 per metastore) each pay one
// 25ms round trip; serialized that is 400ms, overlapped it is ~25ms.
func TestCrossMetastoreIndependence(t *testing.T) {
	const lat = 25 * time.Millisecond
	db, err := Open(Options{CommitLatency: lat})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, ms := range []string{"a", "b"} {
		if err := db.CreateMetastore(ms); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ms := "a"
			if i%2 == 1 {
				ms = "b"
			}
			if _, err := db.Update(ms, func(tx *Tx) error {
				tx.Put("t", fmt.Sprintf("k%d", i), []byte("v"))
				return nil
			}); err != nil {
				t.Errorf("writer %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Generous bound: 6 round trips of slack for scheduler noise, still far
	// below the 400ms a serialized write path would need.
	if elapsed > 150*time.Millisecond {
		t.Fatalf("16 overlapping commits took %s; latency sleeps are being serialized", elapsed)
	}
	if st := db.WALStats(); st != (WALStats{}) {
		t.Fatalf("no-WAL database reported WAL activity: %+v", st)
	}
	for _, ms := range []string{"a", "b"} {
		if v, _ := db.Version(ms); v != 8 {
			t.Fatalf("ms %s version = %d, want 8", ms, v)
		}
	}
}
