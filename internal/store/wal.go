package store

// Group-commit write-ahead log.
//
// The seed serialized every commit through a global walMu, marshaling JSON
// and flushing the file per entry while the committer also held its
// metastore's write lock — so N concurrent commits paid N flushes, N fsyncs
// (well, zero fsyncs: Sync was never called), and N simulated database
// round trips, strictly one after another. This file replaces that with
// MySQL-style group commit:
//
//   - Committers sequence themselves under their metastore's mu, enqueue a
//     walReq (FIFO — enqueue order is durability order), release the lock,
//     and JSON-encode their entry outside every lock.
//   - A single writer goroutine drains the queue, writes all queued entries
//     as one batch, flushes once, fsyncs per SyncPolicy, pays the simulated
//     CommitLatency round trip once for the whole batch, and wakes every
//     waiting committer together.
//
// A WAL I/O error fails every commit in the batch and is sticky: the write
// path is poisoned (all later commits fail with the same error) because a
// later commit may have read a failed commit's sequenced-but-unapplied
// writes, and failing everything after the first error is what keeps the
// durable log a clean prefix of the sequenced history. Reads are unaffected.
// As in any real database, a commit that fails at the WAL is ambiguous:
// bytes already handed to the OS may still survive a crash and be replayed.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"unitycatalog/internal/obs"
)

// SyncPolicy selects when the WAL writer calls fsync.
type SyncPolicy int

const (
	// SyncBatch (the default) issues one fsync per group-commit batch:
	// every acked commit is durable, at one fsync amortized over the
	// whole batch.
	SyncBatch SyncPolicy = iota
	// SyncNever leaves flushing to the OS; a crash can lose a suffix of
	// acked commits (replay still recovers a clean prefix).
	SyncNever
	// SyncAlways fsyncs after every entry, even within a batch — the
	// strictest (and slowest) setting; batching then amortizes only the
	// queue handoff and the simulated round trip.
	SyncAlways
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncNever:
		return "never"
	case SyncAlways:
		return "always"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses "batch", "never", or "always".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "batch", "":
		return SyncBatch, nil
	case "never":
		return SyncNever, nil
	case "always":
		return SyncAlways, nil
	}
	return SyncBatch, fmt.Errorf("store: unknown sync policy %q (want batch, never, or always)", s)
}

// maxWALBatch bounds how many entries one batch may absorb, so a firehose
// of committers cannot starve the ack of the entries already gathered.
const maxWALBatch = 1024

type walWrite struct {
	Table   string `json:"t"`
	Key     string `json:"k"`
	Value   []byte `json:"v,omitempty"`
	Deleted bool   `json:"d,omitempty"`
}

type walEntry struct {
	Op        string     `json:"op"`
	Metastore string     `json:"ms"`
	Version   uint64     `json:"ver,omitempty"`
	Writes    []walWrite `json:"w,omitempty"`
}

// walReq is one commit's slot in the group-commit queue. The committer
// enqueues it while still holding the sequencing lock (FIFO order = version
// order), then fills enc outside all locks and closes ready; the writer
// goroutine awaits ready, writes the batch, and closes done with err set.
type walReq struct {
	enc    []byte
	encErr error
	ready  chan struct{}
	err    error
	done   chan struct{}
}

func newWALReq() *walReq {
	return &walReq{ready: make(chan struct{}), done: make(chan struct{})}
}

// WALStats reports group-commit batching behavior since Open.
type WALStats struct {
	// Batches is the number of group-commit batches written (including
	// failed ones).
	Batches int64
	// Entries is the total number of WAL entries across all batches; the
	// average batch size is Entries/Batches.
	Entries int64
	// Syncs counts fsync calls, per SyncPolicy.
	Syncs int64
	// MaxBatch is the largest batch observed — >1 means commits actually
	// shared a flush.
	MaxBatch int64
}

type walFailure struct{ err error }

type walWriter struct {
	f       *os.File
	bw      *bufio.Writer
	policy  SyncPolicy
	latency time.Duration // simulated DB round trip, paid once per batch

	ch   chan *walReq
	quit chan struct{} // closed when the writer goroutine has exited

	mu      sync.RWMutex // guards closing against sends on ch
	closing bool

	sticky atomic.Pointer[walFailure]

	batches  obs.Counter
	entries  obs.Counter
	syncs    obs.Counter
	maxBatch obs.Gauge
	// batchSizes distributes entries-per-batch; fsyncNs distributes the
	// latency of each fsync call. Both feed /metrics via RegisterMetrics.
	batchSizes *obs.Histogram
	fsyncNs    *obs.Histogram

	// testInjectErr, when non-nil, fails the next batch before any byte is
	// written — the unit tests' stand-in for a disk error.
	testInjectErr atomic.Pointer[walFailure]
}

func newWALWriter(f *os.File, policy SyncPolicy, latency time.Duration) *walWriter {
	w := &walWriter{
		f:          f,
		bw:         bufio.NewWriterSize(f, 1<<20),
		policy:     policy,
		latency:    latency,
		ch:         make(chan *walReq, 4096),
		quit:       make(chan struct{}),
		batchSizes: obs.NewHistogram(obs.SizeBuckets(), 1),
		fsyncNs:    obs.NewLatencyHistogram(),
	}
	go w.run()
	return w
}

// err returns the sticky failure, if any.
func (w *walWriter) err() error {
	if p := w.sticky.Load(); p != nil {
		return p.err
	}
	return nil
}

func (w *walWriter) fail(err error) {
	w.sticky.CompareAndSwap(nil, &walFailure{err: fmt.Errorf("store: wal: %w", err)})
}

// submit enqueues a request. It must be called under the lock that assigned
// the request's sequence number, so queue order matches version order.
func (w *walWriter) submit(r *walReq) error {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closing {
		return ErrClosed
	}
	w.ch <- r
	return nil
}

func (w *walWriter) run() {
	defer close(w.quit)
	for {
		first, ok := <-w.ch
		if !ok {
			w.finalize()
			return
		}
		batch := append(make([]*walReq, 0, 16), first)
	gather:
		for len(batch) < maxWALBatch {
			select {
			case r, ok := <-w.ch:
				if !ok {
					break gather
				}
				batch = append(batch, r)
			default:
				break gather
			}
		}
		w.commitBatch(batch)
	}
}

// commitBatch writes one batch: all entries, one flush, fsync per policy,
// one shared latency round trip, then wakes every committer in the batch.
func (w *walWriter) commitBatch(batch []*walReq) {
	err := w.err()
	if err == nil {
		if p := w.testInjectErr.Swap(nil); p != nil {
			err = p.err
		} else {
			err = w.writeBatch(batch)
		}
		if err != nil {
			w.fail(err)
			err = w.err()
		}
	}
	if err == nil && w.latency > 0 {
		time.Sleep(w.latency)
	}
	w.batches.Inc()
	w.entries.Add(int64(len(batch)))
	w.batchSizes.Observe(int64(len(batch)))
	w.maxBatch.SetMax(int64(len(batch)))
	for _, r := range batch {
		r.err = err
		close(r.done)
	}
}

func (w *walWriter) writeBatch(batch []*walReq) error {
	for _, r := range batch {
		<-r.ready // committer encodes outside all locks
		if r.encErr != nil {
			return r.encErr
		}
		if _, err := w.bw.Write(r.enc); err != nil {
			return err
		}
		if err := w.bw.WriteByte('\n'); err != nil {
			return err
		}
		if w.policy == SyncAlways {
			if err := w.bw.Flush(); err != nil {
				return err
			}
			if err := w.sync(); err != nil {
				return err
			}
		}
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if w.policy == SyncBatch {
		if err := w.sync(); err != nil {
			return err
		}
	}
	return nil
}

// sync fsyncs the WAL file, timing the call into the fsync histogram.
func (w *walWriter) sync() error {
	t0 := time.Now()
	err := w.f.Sync()
	w.fsyncNs.ObserveDuration(time.Since(t0))
	if err != nil {
		return err
	}
	w.syncs.Inc()
	return nil
}

// finalize runs on the writer goroutine after the queue is closed and
// drained: final flush+sync, then close the file.
func (w *walWriter) finalize() {
	if w.err() == nil {
		if err := w.bw.Flush(); err != nil {
			w.fail(err)
		} else if w.policy != SyncNever {
			if err := w.f.Sync(); err != nil {
				w.fail(err)
			}
		}
	}
	if err := w.f.Close(); err != nil && w.err() == nil {
		w.fail(err)
	}
}

// close drains and stops the writer, returning the sticky error if any I/O
// ever failed. Safe to call more than once.
func (w *walWriter) close() error {
	w.mu.Lock()
	already := w.closing
	w.closing = true
	w.mu.Unlock()
	if !already {
		close(w.ch)
	}
	<-w.quit
	return w.err()
}

// stats snapshots the batching counters.
func (w *walWriter) stats() WALStats {
	return WALStats{
		Batches:  w.batches.Load(),
		Entries:  w.entries.Load(),
		Syncs:    w.syncs.Load(),
		MaxBatch: w.maxBatch.Load(),
	}
}

// logMeta appends a metastore-lifecycle entry. The caller must invoke it
// while holding db.mu so the entry's queue position precedes any commit
// that could observe the new metastore map; the returned request is awaited
// by the caller after releasing db.mu.
func (db *DB) logMeta(e walEntry) (*walReq, error) {
	if db.wal == nil {
		return nil, nil
	}
	if err := db.wal.err(); err != nil {
		return nil, err
	}
	r := newWALReq()
	r.enc, r.encErr = json.Marshal(e)
	close(r.ready)
	if err := db.wal.submit(r); err != nil {
		return nil, err
	}
	return r, nil
}

func (db *DB) replayWAL(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: replay wal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var pending []walEntry
	for sc.Scan() {
		var e walEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			// A torn final line is the expected crash artifact: the commit
			// never became durable, so stop replay here. Corruption
			// followed by more valid entries is real damage and fatal.
			if !sc.Scan() {
				break
			}
			return fmt.Errorf("store: corrupt wal entry mid-log: %w", err)
		}
		pending = append(pending, e)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for _, e := range pending {
		switch e.Op {
		case "create_metastore":
			if _, ok := db.stores[e.Metastore]; !ok {
				db.stores[e.Metastore] = newMetastore(db.opts.ChangeLogSize, db.opts.NoOrderedIndex)
			}
		case "drop_metastore":
			delete(db.stores, e.Metastore)
		case "commit":
			ms, ok := db.stores[e.Metastore]
			if !ok {
				continue
			}
			// Group commit preserves sequence order in the log (enqueue
			// happens under the sequencing lock), and a failed batch
			// poisons all later writes, so versions in a healthy log are
			// strictly contiguous per metastore. A gap or reordering means
			// the log was damaged in place.
			if e.Version != ms.version+1 {
				return fmt.Errorf("store: wal replay: metastore %s commit version %d after %d (reordered or damaged log)",
					e.Metastore, e.Version, ms.version)
			}
			for _, w := range e.Writes {
				// getOrCreateRecordLocked also rebuilds the ordered index
				// as replay repopulates the table maps.
				r := ms.getOrCreateRecordLocked(w.Table, w.Key)
				r.versions = append(r.versions, version{commit: e.Version, value: w.Value, deleted: w.Deleted})
			}
			ms.version = e.Version
			for _, w := range e.Writes {
				ms.changes.push(Change{Version: e.Version, Table: w.Table, Key: w.Key, Deleted: w.Deleted})
			}
		}
	}
	return nil
}
