package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWALErrorFailsCommit: a WAL write error must fail the committing
// transaction (the seed silently dropped it and let the commit become
// visible without being durable), must leave the state and version
// untouched, and must poison the write path so no later commit can build on
// sequenced-but-never-durable writes.
func TestWALErrorFailsCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	db, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateMetastore("m")
	if _, err := db.Update("m", func(tx *Tx) error { tx.Put("t", "good", []byte("v")); return nil }); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk gone")
	db.wal.testInjectErr.Store(&walFailure{err: boom})
	if _, err := db.Update("m", func(tx *Tx) error { tx.Put("t", "bad", []byte("v")); return nil }); !errors.Is(err, boom) {
		t.Fatalf("commit after WAL error = %v, want %v", err, boom)
	}

	// The failed write is invisible and the version did not advance.
	if v, _ := db.Version("m"); v != 1 {
		t.Fatalf("version after failed commit = %d, want 1", v)
	}
	snap, _ := db.Snapshot("m")
	if _, ok := snap.Get("t", "bad"); ok {
		t.Fatal("failed commit must not be visible")
	}
	if got, _ := snap.Get("t", "good"); string(got) != "v" {
		t.Fatalf("durable commit lost: %q", got)
	}
	snap.Close()

	// The failure is sticky: the write path is poisoned...
	if _, err := db.Update("m", func(tx *Tx) error { tx.Put("t", "later", []byte("v")); return nil }); !errors.Is(err, boom) {
		t.Fatalf("commit after sticky failure = %v, want %v", err, boom)
	}
	// ...but reads still work.
	snap2, _ := db.Snapshot("m")
	if _, ok := snap2.Get("t", "good"); !ok {
		t.Fatal("reads must survive a poisoned write path")
	}
	snap2.Close()

	// Close surfaces the failure, and replay recovers the durable prefix.
	if err := db.Close(); !errors.Is(err, boom) {
		t.Fatalf("close = %v, want %v", err, boom)
	}
	db2, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, _ := db2.Version("m"); v != 1 {
		t.Fatalf("replayed version = %d, want 1", v)
	}
}

// TestWALGroupCommitBatches drives concurrent committers through the WAL
// and requires that they actually shared batches (MaxBatch > 1), that every
// commit landed in the log, and that replay reproduces the final state.
func TestWALGroupCommitBatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	// A small commit latency widens the batch window: while one batch pays
	// its round trip, the other writers queue up behind it.
	db, err := Open(Options{WALPath: path, CommitLatency: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateMetastore("m")

	const writers, each = 16, 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if _, err := db.Update("m", func(tx *Tx) error {
					tx.Put("t", key, []byte("v"))
					return nil
				}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := db.WALStats()
	if st.MaxBatch <= 1 {
		t.Errorf("MaxBatch = %d, want > 1 (no group commit happened)", st.MaxBatch)
	}
	if want := int64(writers*each + 1); st.Entries != want { // +1 create_metastore
		t.Errorf("Entries = %d, want %d", st.Entries, want)
	}
	if st.Batches >= st.Entries {
		t.Errorf("Batches = %d >= Entries = %d: nothing was batched", st.Batches, st.Entries)
	}
	if st.Syncs == 0 {
		t.Error("Syncs = 0: default SyncBatch policy never fsynced")
	}
	wantV := uint64(writers * each)
	if v, _ := db.Version("m"); v != wantV {
		t.Fatalf("version = %d, want %d", v, wantV)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, _ := db2.Version("m"); v != wantV {
		t.Fatalf("replayed version = %d, want %d", v, wantV)
	}
	snap, _ := db2.Snapshot("m")
	defer snap.Close()
	if n := snap.Count("t", ""); n != writers*each {
		t.Fatalf("replayed keys = %d, want %d", n, writers*each)
	}
}

// TestSyncPolicies checks the fsync accounting of each policy and the
// string round trip.
func TestSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		policy SyncPolicy
		name   string
	}{{SyncBatch, "batch"}, {SyncNever, "never"}, {SyncAlways, "always"}} {
		t.Run(tc.name, func(t *testing.T) {
			if tc.policy.String() != tc.name {
				t.Fatalf("String() = %q, want %q", tc.policy.String(), tc.name)
			}
			if p, err := ParseSyncPolicy(tc.name); err != nil || p != tc.policy {
				t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.name, p, err)
			}
			db, err := Open(Options{WALPath: filepath.Join(t.TempDir(), "wal"), Sync: tc.policy})
			if err != nil {
				t.Fatal(err)
			}
			db.CreateMetastore("m")
			const commits = 5
			for i := 0; i < commits; i++ {
				if _, err := db.Update("m", func(tx *Tx) error {
					tx.Put("t", fmt.Sprintf("k%d", i), []byte("v"))
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			st := db.WALStats()
			switch tc.policy {
			case SyncNever:
				if st.Syncs != 0 {
					t.Errorf("SyncNever synced %d times", st.Syncs)
				}
			case SyncBatch:
				if st.Syncs == 0 || st.Syncs > st.Batches {
					t.Errorf("SyncBatch: syncs = %d, batches = %d (want one sync per batch)", st.Syncs, st.Batches)
				}
			case SyncAlways:
				if st.Syncs != st.Entries {
					t.Errorf("SyncAlways: syncs = %d, entries = %d (want one sync per entry)", st.Syncs, st.Entries)
				}
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Error("ParseSyncPolicy should reject unknown policies")
	}
	if p, err := ParseSyncPolicy(""); err != nil || p != SyncBatch {
		t.Errorf("empty policy should default to batch, got %v, %v", p, err)
	}
}

// TestWALTornBatchReplayEveryByte is the crash-consistency sweep: it builds
// a WAL of several multi-write commits, then for EVERY byte length L
// truncates the log to its first L bytes, replays, and asserts the
// recovered database is exactly the longest clean prefix of commits — no
// torn commit applied, no commit skipped, no reordering.
func TestWALTornBatchReplayEveryByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.jsonl")
	db, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateMetastore("m")

	// A varied commit history: multi-key writes, overwrites, a delete.
	muts := []func(tx *Tx) error{
		func(tx *Tx) error { tx.Put("t", "a", []byte("a1")); tx.Put("t", "b", []byte("b1")); return nil },
		func(tx *Tx) error { tx.Put("t", "c", []byte("c1")); return nil },
		func(tx *Tx) error { tx.Put("t", "a", []byte("a2")); tx.Delete("t", "b"); return nil },
		func(tx *Tx) error { tx.Put("u", "x", []byte("x1")); tx.Put("t", "d", []byte("d1")); return nil },
		func(tx *Tx) error { tx.Delete("t", "c"); tx.Put("t", "e", []byte("e1")); return nil },
	}
	// expect[v] is the full (table, key) → value state after commit v.
	expect := make([]map[string]string, len(muts)+1)
	expect[0] = map[string]string{}
	dump := func() map[string]string {
		out := map[string]string{}
		snap, err := db.Snapshot("m")
		if err != nil {
			t.Fatal(err)
		}
		defer snap.Close()
		for _, table := range []string{"t", "u"} {
			for _, kv := range snap.Scan(table, "") {
				out[table+"/"+kv.Key] = string(kv.Value)
			}
		}
		return out
	}
	for i, fn := range muts {
		if v, err := db.Update("m", fn); err != nil || v != uint64(i+1) {
			t.Fatalf("commit %d: v=%d err=%v", i, v, err)
		}
		expect[i+1] = dump()
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// lineEnd[i] = byte offset just past line i's JSON (before its '\n');
	// line 0 is create_metastore, lines 1..5 are the commits.
	var lineEnds []int
	for off, rest := 0, string(data); ; {
		nl := strings.IndexByte(rest, '\n')
		if nl < 0 {
			break
		}
		lineEnds = append(lineEnds, off+nl)
		off += nl + 1
		rest = rest[nl+1:]
	}
	if len(lineEnds) != len(muts)+1 {
		t.Fatalf("wal has %d lines, want %d", len(lineEnds), len(muts)+1)
	}

	for l := 0; l <= len(data); l++ {
		trunc := filepath.Join(dir, fmt.Sprintf("trunc-%d.jsonl", l%2)) // reuse two names
		if err := os.WriteFile(trunc, data[:l], 0o644); err != nil {
			t.Fatal(err)
		}
		// How many lines are fully contained in the prefix? A line is
		// recoverable once all of its JSON is present (the trailing
		// newline itself is not required).
		lines := 0
		for _, e := range lineEnds {
			if l >= e {
				lines++
			}
		}
		rdb, err := Open(Options{WALPath: trunc})
		if err != nil {
			t.Fatalf("truncate at %d: replay failed: %v", l, err)
		}
		if lines == 0 {
			// Not even create_metastore survived.
			if got := rdb.Metastores(); len(got) != 0 {
				t.Fatalf("truncate at %d: metastores = %v, want none", l, got)
			}
			rdb.Close()
			continue
		}
		commits := lines - 1
		v, err := rdb.Version("m")
		if err != nil {
			t.Fatalf("truncate at %d: %v", l, err)
		}
		if v != uint64(commits) {
			t.Fatalf("truncate at %d: version = %d, want %d", l, v, commits)
		}
		snap, _ := rdb.Snapshot("m")
		got := map[string]string{}
		for _, table := range []string{"t", "u"} {
			for _, kv := range snap.Scan(table, "") {
				got[table+"/"+kv.Key] = string(kv.Value)
			}
		}
		snap.Close()
		want := expect[commits]
		if len(got) != len(want) {
			t.Fatalf("truncate at %d (prefix of %d commits): state = %v, want %v", l, commits, got, want)
		}
		for k, wv := range want {
			if got[k] != wv {
				t.Fatalf("truncate at %d: %s = %q, want %q", l, k, got[k], wv)
			}
		}
		rdb.Close()
	}
}

// TestWALReplayRejectsReorderedCommits: replay must refuse a log whose
// per-metastore versions are not contiguous — group commit guarantees
// enqueue order equals version order, so a reordered log means damage.
func TestWALReplayRejectsReorderedCommits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	db, _ := Open(Options{WALPath: path})
	db.CreateMetastore("m")
	db.Update("m", func(tx *Tx) error { tx.Put("t", "k1", []byte("v")); return nil })
	db.Update("m", func(tx *Tx) error { tx.Put("t", "k2", []byte("v")); return nil })
	db.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 3 {
		t.Fatalf("unexpected wal shape: %q", data)
	}
	// Swap the two commit lines.
	reordered := lines[0] + lines[2] + lines[1]
	if err := os.WriteFile(path, []byte(reordered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{WALPath: path}); err == nil {
		t.Fatal("reordered commit versions should fail replay")
	}
}
