package txn

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/cloudsim"
	"unitycatalog/internal/delta"
	"unitycatalog/internal/faults"
	"unitycatalog/internal/ids"
	"unitycatalog/internal/retry"
	"unitycatalog/internal/store"
)

// Common errors.
var (
	// ErrConflict means a participant table advanced past the transaction's
	// snapshot; retry with fresh state.
	ErrConflict = errors.New("txn: serialization conflict")
	// ErrAborted is returned by operations on a finished transaction.
	ErrAborted = errors.New("txn: transaction is no longer active")
	// ErrFenced means a newer coordinator epoch took over this metastore's
	// transactions; this coordinator must stop publishing. The in-flight
	// transaction's outcome is owned by the new coordinator's recovery.
	ErrFenced = errors.New("txn: coordinator fenced by a newer epoch")
	// errForeignEntry means the log entry at a participant's target version
	// exists but is not ours — an out-of-band writer raced the coordinator
	// on a table that should be catalog-owned.
	errForeignEntry = errors.New("txn: foreign log entry at target version")
)

// Options tunes a Coordinator. The zero value is production defaults.
type Options struct {
	// Lease bounds how long a PREPARED transaction may keep publishing
	// before recovery is allowed to take it over (default 30s). Must
	// comfortably exceed the worst-case publish duration; the documented
	// fencing guarantee assumes clock skew between coordinators is small
	// relative to this bound.
	Lease time.Duration
	// PublishRetry is the retry policy for the blob publish/compensation
	// path. Publishing is PutIfAbsent of frozen bytes and compensation is
	// Delete, both idempotent, so every injected fault class — including
	// Timeout, whose outcome is unknown — is safe to retry. The zero value
	// means the retry package defaults.
	PublishRetry retry.Policy
}

func (o Options) withDefaults() Options {
	if o.Lease == 0 {
		o.Lease = 30 * time.Second
	}
	return o
}

// Coordinator commits multi-table transactions through the catalog and
// recovers them after a crash. One coordinator instance per process; a
// restarted coordinator acquires a fresh epoch per metastore on first use,
// fencing any predecessor still running.
type Coordinator struct {
	Service *catalog.Service

	// Crash is a test-only hook called at every protocol step with a point
	// label ("after_intent", "before_publish:<table>", "after_publish:<table>",
	// "before_flip"). Returning a non-nil error makes the in-flight
	// operation stop immediately with no cleanup — simulating the
	// coordinator process dying at that step. Set before first use.
	Crash func(point string) error

	opts    Options
	metrics *Metrics

	// mu serializes commits and recovery sweeps on this coordinator (per
	// metastore set). Cross-process exclusion comes from epochs and leases,
	// not this lock.
	mu sync.Mutex

	// epochMu guards epochs: metastore ID -> this coordinator's acquired
	// epoch. Acquiring an epoch durably increments the metastore's counter,
	// so every record mutation can verify it still holds the latest.
	epochMu sync.Mutex
	epochs  map[string]uint64

	sweepStop chan struct{}
	sweepDone chan struct{}
}

// NewCoordinator returns a Coordinator over the service with default options.
func NewCoordinator(svc *catalog.Service) *Coordinator {
	return NewCoordinatorOptions(svc, Options{})
}

// NewCoordinatorOptions returns a Coordinator with explicit options.
func NewCoordinatorOptions(svc *catalog.Service, opts Options) *Coordinator {
	return &Coordinator{
		Service: svc,
		opts:    opts.withDefaults(),
		metrics: NewMetrics(),
		epochs:  map[string]uint64{},
	}
}

// Metrics returns the coordinator's metric set.
func (c *Coordinator) Metrics() *Metrics { return c.metrics }

func (c *Coordinator) now() time.Time { return c.Service.Clock().Now() }

// crashed consults the test-only crash hook.
func (c *Coordinator) crashed(point string) error {
	if c.Crash == nil {
		return nil
	}
	return c.Crash(point)
}

// --- epoch fencing ---

// epoch returns this coordinator's epoch for the metastore, acquiring one on
// first use by durably incrementing the metastore's epoch counter. The
// acquisition is the fencing point: any coordinator holding an older epoch
// fails its next record mutation with ErrFenced.
func (c *Coordinator) epoch(msID string) (uint64, error) {
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	if e, ok := c.epochs[msID]; ok {
		return e, nil
	}
	var next uint64
	_, err := c.Service.DB().Update(msID, func(tx *store.Tx) error {
		next = readEpoch(tx) + 1
		tx.Put(storeTable, epochKey, []byte(strconv.FormatUint(next, 10)))
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("txn: acquire coordinator epoch: %w", err)
	}
	c.epochs[msID] = next
	c.metrics.EpochAcquired.Inc()
	return next, nil
}

// epochReader is the subset of store read APIs shared by Tx and Snapshot.
type epochReader interface {
	Get(table, key string) ([]byte, bool)
}

func readEpoch(r epochReader) uint64 {
	b, ok := r.Get(storeTable, epochKey)
	if !ok {
		return 0
	}
	e, err := strconv.ParseUint(string(b), 10, 64)
	if err != nil {
		return 0
	}
	return e
}

// putRecord durably writes a new intent record under epoch fencing.
func (c *Coordinator) putRecord(msID string, rec *intentRecord) error {
	ep, err := c.epoch(msID)
	if err != nil {
		return err
	}
	rec.Epoch = ep
	rec.UpdatedAt = c.now()
	b, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	_, err = c.Service.DB().Update(msID, func(tx *store.Tx) error {
		if readEpoch(tx) != ep {
			return ErrFenced
		}
		tx.Put(storeTable, string(rec.ID), b)
		return nil
	})
	if errors.Is(err, ErrFenced) {
		c.metrics.Fenced.Inc()
	}
	return err
}

// updateRecord mutates an existing record under epoch fencing: the update
// transaction re-reads the metastore's epoch counter and the record inside
// the store's serializable write path, so a fenced coordinator can never
// publish a state transition — the store is the linearization point for
// every commit/abort decision.
func (c *Coordinator) updateRecord(msID string, id ids.ID, mut func(rec *intentRecord) error) error {
	ep, err := c.epoch(msID)
	if err != nil {
		return err
	}
	now := c.now()
	_, err = c.Service.DB().Update(msID, func(tx *store.Tx) error {
		if readEpoch(tx) != ep {
			return ErrFenced
		}
		b, ok := tx.Get(storeTable, string(id))
		if !ok {
			return fmt.Errorf("%w: txn %s", catalog.ErrNotFound, id.Short())
		}
		rec, err := decodeRecord(b)
		if err != nil {
			return err
		}
		if err := mut(rec); err != nil {
			return err
		}
		rec.Epoch = ep
		rec.UpdatedAt = now
		nb, err := encodeRecord(rec)
		if err != nil {
			return err
		}
		tx.Put(storeTable, string(id), nb)
		return nil
	})
	if errors.Is(err, ErrFenced) {
		c.metrics.Fenced.Inc()
	}
	return err
}

// fenceCheck verifies, before a blob publish, that this coordinator still
// owns the transaction: its epoch is current, the record is still PREPARED,
// and the lease has not expired. The check-then-publish window is bounded by
// the lease (recovery only takes over PREPARED records past lease, and
// publishes are idempotent frozen bytes), which is the documented fencing
// assumption.
func (c *Coordinator) fenceCheck(msID string, id ids.ID) error {
	ep, err := c.epoch(msID)
	if err != nil {
		return err
	}
	snap, err := c.Service.DB().Snapshot(msID)
	if err != nil {
		return err
	}
	defer snap.Close()
	if readEpoch(snap) != ep {
		c.metrics.Fenced.Inc()
		return ErrFenced
	}
	b, ok := snap.Get(storeTable, string(id))
	if !ok {
		c.metrics.Fenced.Inc()
		return fmt.Errorf("%w: record vanished", ErrFenced)
	}
	rec, err := decodeRecord(b)
	if err != nil {
		return err
	}
	if rec.State != StatePrepared {
		c.metrics.Fenced.Inc()
		return fmt.Errorf("%w: record already %s", ErrFenced, rec.State)
	}
	if !c.now().Before(rec.LeaseExpiry) {
		c.metrics.Fenced.Inc()
		return fmt.Errorf("%w: lease expired", ErrFenced)
	}
	return nil
}

// --- blob publish path ---

// serviceBlobs returns the coordinator's control-plane storage access.
// Coordinator-side operations (validation snapshots, log publish,
// compensation) use standing service access, not vended tokens: the
// coordinator is the catalog, and recovery has no principal to vend for.
func (c *Coordinator) serviceBlobs() delta.Blobs {
	return delta.ServiceBlobs{Store: c.Service.Cloud()}
}

// publishOne publishes one participant's frozen log entry at path,
// classifying failures: injected storage faults of every class are transient
// (the operation is idempotent, so even a Timeout is safe to replay) and are
// retried under the publish policy; an existing entry with different bytes
// is a fatal errForeignEntry; everything else surfaces immediately.
func (c *Coordinator) publishOne(blobs delta.Blobs, path string, payload []byte) error {
	attempts := 0
	err := retry.Do(c.opts.PublishRetry, retry.Retryable, func() error {
		attempts++
		err := blobs.PutIfAbsent(path, payload)
		if err == nil {
			return nil
		}
		if errors.Is(err, cloudsim.ErrExists) {
			existing, gerr := blobs.Get(path)
			if gerr != nil {
				return gerr // injected faults retry; real errors surface
			}
			if bytes.Equal(existing, payload) {
				return nil // an earlier attempt (or a recovering peer) landed it
			}
			return fmt.Errorf("%w: %s", errForeignEntry, path)
		}
		return err
	})
	if attempts > 1 {
		c.metrics.PublishRetries.Add(int64(attempts - 1))
	}
	return err
}

// deleteIfOurs removes the log entry at path when its content matches
// payload (compensation must never delete an out-of-band writer's entry).
// Missing objects count as already-deleted. Injected faults are retried.
func (c *Coordinator) deleteIfOurs(blobs delta.Blobs, path string, payload []byte) error {
	return retry.Do(c.opts.PublishRetry, retry.Retryable, func() error {
		existing, err := blobs.Get(path)
		if err != nil {
			if errors.Is(err, cloudsim.ErrNotFound) {
				return nil
			}
			return err
		}
		if !bytes.Equal(existing, payload) {
			return nil // foreign entry: not ours to remove
		}
		if err := blobs.Delete(path); err != nil && !errors.Is(err, cloudsim.ErrNotFound) {
			return err
		}
		return nil
	})
}

// deleteStaged removes staged data-file blobs (idempotent; missing = done).
func (c *Coordinator) deleteStaged(blobs delta.Blobs, paths []string) error {
	var errs []error
	for _, p := range paths {
		err := retry.Do(c.opts.PublishRetry, retry.Retryable, func() error {
			if err := blobs.Delete(p); err != nil && !errors.Is(err, cloudsim.ErrNotFound) {
				return err
			}
			return nil
		})
		if err != nil {
			errs = append(errs, fmt.Errorf("delete staged %s: %w", p, err))
		}
	}
	return errors.Join(errs...)
}

// snapshotRetrying opens a table snapshot, retrying injected storage faults.
func (c *Coordinator) snapshotRetrying(t *delta.Table) (*delta.Snapshot, error) {
	return retry.DoValue(c.opts.PublishRetry, retry.Retryable, t.Snapshot)
}

// retryable mirrors retry.Retryable for fault classification in callers.
func retryableFault(err error) bool { return faults.IsFault(err) }
