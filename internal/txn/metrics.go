package txn

import "unitycatalog/internal/obs"

// Metrics is the multi-table transaction metric set: lifecycle counters for
// commits/aborts and the recovery sweep, plus state-transition latency
// histograms. All fields are lock-free atomics safe for concurrent use.
type Metrics struct {
	Commits        obs.Counter // transactions flipped to COMMITTED
	Aborts         obs.Counter // transactions decided ABORTED (live or recovery)
	Conflicts      obs.Counter // commits rejected by snapshot validation
	Fenced         obs.Counter // operations refused under a stale epoch/lease
	EpochAcquired  obs.Counter // coordinator epochs acquired (per metastore)
	PublishRetries obs.Counter // extra publish/compensation attempts after faults

	RecoverRuns      obs.Counter // recovery sweeps executed
	RecoveredForward obs.Counter // COMMITTED/taken-over records rolled forward
	RecoveredBack    obs.Counter // expired PREPARED records rolled back
	RecoverCleaned   obs.Counter // dirty ABORTED records fully compensated
	RecoverCorrupt   obs.Counter // undecodable intent records skipped

	CommitSeconds        *obs.Histogram // Begin-validated Commit() end to end
	PrepareSeconds       *obs.Histogram // validate + durable PREPARED intent
	PublishSeconds       *obs.Histogram // per-participant log-entry publish
	RecoverySweepSeconds *obs.Histogram // full Recover() pass per metastore
}

// NewMetrics returns a zeroed metric set.
func NewMetrics() *Metrics {
	return &Metrics{
		CommitSeconds:        obs.NewLatencyHistogram(),
		PrepareSeconds:       obs.NewLatencyHistogram(),
		PublishSeconds:       obs.NewLatencyHistogram(),
		RecoverySweepSeconds: obs.NewLatencyHistogram(),
	}
}

// Register exposes the set on a registry under the uc_txn_* family (served
// by /metrics when wired through uc.Open).
func (m *Metrics) Register(r *obs.Registry) {
	r.RegisterCounter("uc_txn_commits_total", "Multi-table transactions committed.", &m.Commits)
	r.RegisterCounter("uc_txn_aborts_total", "Multi-table transactions aborted.", &m.Aborts)
	r.RegisterCounter("uc_txn_conflicts_total", "Multi-table commits rejected by snapshot validation.", &m.Conflicts)
	r.RegisterCounter("uc_txn_fenced_total", "Coordinator operations refused under a stale epoch or expired lease.", &m.Fenced)
	r.RegisterCounter("uc_txn_epochs_total", "Coordinator epochs acquired.", &m.EpochAcquired)
	r.RegisterCounter("uc_txn_publish_retries_total", "Extra publish/compensation attempts after injected or transient storage faults.", &m.PublishRetries)
	r.RegisterCounter("uc_txn_recover_runs_total", "Recovery sweeps executed.", &m.RecoverRuns)
	r.RegisterCounter("uc_txn_recovered_forward_total", "Transactions rolled forward to full visibility by recovery.", &m.RecoveredForward)
	r.RegisterCounter("uc_txn_recovered_back_total", "Expired PREPARED transactions rolled back by recovery.", &m.RecoveredBack)
	r.RegisterCounter("uc_txn_recover_cleaned_total", "Dirty aborted transactions whose compensation recovery completed.", &m.RecoverCleaned)
	r.RegisterCounter("uc_txn_recover_corrupt_total", "Undecodable transaction intent records skipped by recovery.", &m.RecoverCorrupt)
	r.RegisterHistogram("uc_txn_commit_seconds", "Multi-table Commit latency end to end.", m.CommitSeconds)
	r.RegisterHistogram("uc_txn_prepare_seconds", "Latency from Commit entry to durable PREPARED intent.", m.PrepareSeconds)
	r.RegisterHistogram("uc_txn_publish_seconds", "Per-participant Delta log entry publish latency.", m.PublishSeconds)
	r.RegisterHistogram("uc_txn_recovery_sweep_seconds", "Recovery sweep latency per metastore.", m.RecoverySweepSeconds)
}
