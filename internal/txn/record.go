package txn

import (
	"encoding/json"
	"fmt"
	"time"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/ids"
)

// State is the durable lifecycle state of a transaction's intent record.
//
//	PREPARED  --(all entries published, flip)-->  COMMITTED
//	PREPARED  --(conflict / fault / lease expiry with nothing published)--> ABORTED
//
// PREPARED means the outcome is undecided: the intent (participants, pinned
// versions, and the byte-exact log entries to publish) is durable, and the
// coordinator may be mid-publish. COMMITTED and ABORTED are terminal
// decisions; a COMMITTED record whose participants are not all published is
// rolled forward by recovery, an ABORTED record whose cleanup did not finish
// (Dirty) is re-cleaned by recovery.
type State string

// Transaction record states.
const (
	StatePrepared  State = "PREPARED"
	StateCommitted State = "COMMITTED"
	StateAborted   State = "ABORTED"
)

// storeTable is the catalog store table holding transaction intent records.
// Intent writes ride the store's group-commit WAL like every other metadata
// commit, so a record the coordinator observed as durable survives a crash.
const storeTable = "multitable_txn"

// epochKey is the reserved key (never a valid ids.ID) holding the metastore's
// coordinator epoch; see Coordinator epoch fencing.
const epochKey = "!coordinator_epoch"

// participantRecord is one table's slice of a durable intent record: enough
// to republish (roll forward) or compensate (roll back) without the
// originating process.
type participantRecord struct {
	// Name is the securable full name (catalog.schema.table).
	Name string `json:"name"`
	// EntityID is the resolved securable, for audit and change events.
	EntityID ids.ID `json:"entity_id,omitempty"`
	// TablePath is the table's storage root.
	TablePath string `json:"table_path"`
	// Base is the pinned snapshot version; Target = Base+1 is the version
	// this transaction publishes.
	Base   int64 `json:"base"`
	Target int64 `json:"target"`
	// Payload is the byte-exact log entry to publish at Target. Publishing
	// is PutIfAbsent of these frozen bytes, so republish is idempotent and
	// an existing entry is ours iff it matches byte-for-byte.
	Payload []byte `json:"payload,omitempty"`
	// Staged are data-file blob paths written eagerly by StageAppend; they
	// are garbage unless the transaction commits.
	Staged []string `json:"staged,omitempty"`
	// Published is durable progress: set after this participant's log entry
	// landed. A recovery hint only — the ground truth is storage itself,
	// probed by payload comparison.
	Published bool `json:"published,omitempty"`
}

// intentRecord is the durable two-phase commit record.
type intentRecord struct {
	ID        ids.ID `json:"id"`
	Principal string `json:"principal"`
	State     State  `json:"state"`
	// Epoch is the coordinator epoch that last owned this record; a
	// coordinator only mutates records while its epoch is current.
	Epoch uint64 `json:"epoch"`
	// LeaseExpiry bounds how long the owning coordinator may keep
	// publishing. Recovery never touches a PREPARED record before its lease
	// expires, so a live coordinator and a recovering one cannot both act.
	LeaseExpiry  time.Time           `json:"lease_expiry"`
	Participants []participantRecord `json:"participants,omitempty"`
	// Tables is the legacy "full name -> target version" summary kept for
	// the Record API and old-format WAL records.
	Tables map[string]int64 `json:"tables,omitempty"`
	// Dirty marks an ABORTED record whose compensation (published-entry or
	// staged-file deletion) has not verifiably finished; the recovery sweep
	// retries cleanup until it clears. CleanupErr records the last failure
	// so a half-compensated abort is visible, not silent.
	Dirty      bool   `json:"dirty,omitempty"`
	CleanupErr string `json:"cleanup_err,omitempty"`
	UpdatedAt  time.Time `json:"updated_at,omitempty"`
}

// encodeRecord marshals a record for the store.
func encodeRecord(rec *intentRecord) ([]byte, error) {
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("txn: encode record %s: %w", rec.ID.Short(), err)
	}
	return b, nil
}

// decodeRecord unmarshals a record, tolerating the legacy pre-recovery
// format (no participants, only the Tables summary).
func decodeRecord(b []byte) (*intentRecord, error) {
	var rec intentRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return nil, fmt.Errorf("txn: corrupt transaction record: %w", err)
	}
	return &rec, nil
}

// allPublished reports whether every participant's progress flag is set.
func (r *intentRecord) allPublished() bool {
	for i := range r.Participants {
		if !r.Participants[i].Published {
			return false
		}
	}
	return true
}

// Record fetches a transaction's durable record (for tests and tooling):
// its terminal-or-in-flight state and the per-table target versions.
func (c *Coordinator) Record(msID string, id ids.ID) (state string, tables map[string]int64, err error) {
	snap, err := c.Service.DB().Snapshot(msID)
	if err != nil {
		return "", nil, err
	}
	defer snap.Close()
	b, ok := snap.Get(storeTable, string(id))
	if !ok {
		return "", nil, fmt.Errorf("%w: txn %s", catalog.ErrNotFound, id.Short())
	}
	rec, err := decodeRecord(b)
	if err != nil {
		return "", nil, err
	}
	tables = map[string]int64{}
	for k, v := range rec.Tables {
		tables[k] = v
	}
	for _, p := range rec.Participants {
		tables[p.Name] = p.Target
	}
	return string(rec.State), tables, nil
}
