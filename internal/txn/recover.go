package txn

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"time"

	"unitycatalog/internal/audit"
	"unitycatalog/internal/cloudsim"
	"unitycatalog/internal/delta"
	"unitycatalog/internal/events"
	"unitycatalog/internal/retry"
)

// RecoverStats summarizes one recovery sweep.
type RecoverStats struct {
	Scanned int // intent records examined
	Skipped int // terminal/clean or within-lease records left alone
	Forward int // transactions rolled forward to full visibility
	Back    int // transactions rolled back (presumed abort)
	Cleaned int // dirty aborts whose compensation completed
	Corrupt int // undecodable records skipped
}

func (s *RecoverStats) add(o RecoverStats) {
	s.Scanned += o.Scanned
	s.Skipped += o.Skipped
	s.Forward += o.Forward
	s.Back += o.Back
	s.Cleaned += o.Cleaned
	s.Corrupt += o.Corrupt
}

// Recover sweeps one metastore's intent records and finishes every
// transaction a crashed coordinator left behind. Invariants:
//
//   - COMMITTED is forever: a record that flipped is only ever rolled
//     forward (republish missing entries via idempotent PutIfAbsent of the
//     frozen payload) — never undone.
//   - PREPARED within its lease is untouchable: the owning coordinator may
//     still be publishing, and acting early could race it.
//   - PREPARED past its lease is decided by storage, not by the record's
//     progress hints: probe every participant's target entry and compare
//     bytes. Any foreign entry → roll back ours (an out-of-band writer won).
//     At least one of ours published, none foreign → take over and roll
//     forward (a reader may already have seen that table at the txn
//     version, so rolling back would un-commit an observed state). Nothing
//     published → presumed abort: mark ABORTED and delete staged files.
//   - ABORTED with Dirty retries compensation until it verifiably finishes.
//
// All record mutations are fenced by this coordinator's epoch, acquired
// lazily on the first actionable record — an idle sweep writes nothing.
// Residual assumption: a live coordinator whose lease expired mid-publish
// could still race recovery at the blob layer for the bounded window
// between its fenceCheck and its PutIfAbsent; both sides write the same
// frozen bytes, so the race is benign for roll-forward, and the epoch fence
// stops the stale coordinator at its next durable step.
func (c *Coordinator) Recover(msID string) (RecoverStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	defer func() {
		c.metrics.RecoverySweepSeconds.ObserveDuration(time.Since(start))
	}()
	c.metrics.RecoverRuns.Inc()

	snap, err := c.Service.DB().Snapshot(msID)
	if err != nil {
		return RecoverStats{}, err
	}
	type item struct {
		key string
		rec *intentRecord
	}
	var stats RecoverStats
	var actionable []item
	now := c.now()
	for _, kv := range snap.Scan(storeTable, "") {
		if strings.HasPrefix(kv.Key, "!") {
			continue // reserved keys (coordinator epoch), not records
		}
		stats.Scanned++
		rec, derr := decodeRecord(kv.Value)
		if derr != nil {
			stats.Corrupt++
			c.metrics.RecoverCorrupt.Inc()
			continue
		}
		if c.actionNeeded(rec, now) {
			actionable = append(actionable, item{key: kv.Key, rec: rec})
		} else {
			stats.Skipped++
		}
	}
	snap.Close()
	if len(actionable) == 0 {
		return stats, nil
	}

	// Something needs work: acquire (or reuse) our epoch so every decision
	// below is fenced, then re-read each record under that fence — the
	// snapshot above may be stale by now.
	if _, err := c.epoch(msID); err != nil {
		return stats, err
	}
	var errs []error
	for _, it := range actionable {
		st, rerr := c.recoverOne(msID, it.rec)
		stats.add(st)
		if rerr != nil {
			errs = append(errs, fmt.Errorf("txn %s: %w", it.rec.ID.Short(), rerr))
		}
	}
	return stats, errors.Join(errs...)
}

// actionNeeded reports whether a record requires recovery work at time now.
func (c *Coordinator) actionNeeded(rec *intentRecord, now time.Time) bool {
	switch rec.State {
	case StateCommitted:
		// Progress hints are conservative: a participant published right
		// before the crash may still read false, and republish is
		// idempotent, so acting on a stale hint is safe.
		return len(rec.Participants) > 0 && !rec.allPublished()
	case StatePrepared:
		return !now.Before(rec.LeaseExpiry)
	case StateAborted:
		return rec.Dirty
	default:
		return false
	}
}

// recoverOne applies the recovery rules to a single record, re-reading it
// under the epoch fence before acting.
func (c *Coordinator) recoverOne(msID string, stale *intentRecord) (RecoverStats, error) {
	var stats RecoverStats
	// Re-read: the record may have progressed since the sweep's snapshot
	// (e.g. its live coordinator finished, or a prior sweep fixed it).
	snap, err := c.Service.DB().Snapshot(msID)
	if err != nil {
		return stats, err
	}
	b, ok := snap.Get(storeTable, string(stale.ID))
	snap.Close()
	if !ok {
		return stats, nil
	}
	rec, err := decodeRecord(b)
	if err != nil {
		stats.Corrupt++
		c.metrics.RecoverCorrupt.Inc()
		return stats, nil
	}
	if !c.actionNeeded(rec, c.now()) {
		stats.Skipped++
		return stats, nil
	}

	blobs := c.serviceBlobs()
	switch rec.State {
	case StateCommitted:
		if err := c.rollForward(msID, rec, blobs, false); err != nil {
			return stats, err
		}
		stats.Forward++
		return stats, nil

	case StateAborted:
		if err := c.cleanupAbort(msID, rec, blobs); err != nil {
			return stats, err
		}
		stats.Cleaned++
		return stats, nil

	case StatePrepared:
		published, foreign, perr := c.probe(blobs, rec)
		if perr != nil {
			return stats, perr
		}
		if foreign == 0 && published > 0 {
			// Part of the transaction is already visible; the only outcome
			// consistent with what readers may have observed is commit.
			if err := c.rollForward(msID, rec, blobs, true); err != nil {
				return stats, err
			}
			stats.Forward++
			return stats, nil
		}
		// Nothing of ours visible (or an out-of-band writer invalidated a
		// target version): presumed abort.
		if err := c.rollBack(msID, rec, blobs); err != nil {
			return stats, err
		}
		stats.Back++
		return stats, nil
	}
	return stats, nil
}

// probe asks storage for ground truth: how many participant target entries
// hold our frozen bytes, and how many hold someone else's.
func (c *Coordinator) probe(blobs delta.Blobs, rec *intentRecord) (published, foreign int, err error) {
	for i := range rec.Participants {
		pr := &rec.Participants[i]
		existing, gerr := retry.DoValue(c.opts.PublishRetry, retry.Retryable, func() ([]byte, error) {
			return blobs.Get(logEntryPath(pr))
		})
		if gerr != nil {
			if errors.Is(gerr, cloudsim.ErrNotFound) {
				continue
			}
			return 0, 0, fmt.Errorf("probe %s: %w", pr.Name, gerr)
		}
		if bytes.Equal(existing, pr.Payload) {
			published++
		} else {
			foreign++
		}
	}
	return published, foreign, nil
}

// rollForward republishes every missing participant entry and ensures the
// record is terminally COMMITTED. takeover marks a PREPARED record this
// sweep is claiming from a dead coordinator: the flip to COMMITTED happens
// only after every entry verifiably landed.
func (c *Coordinator) rollForward(msID string, rec *intentRecord, blobs delta.Blobs, takeover bool) error {
	for i := range rec.Participants {
		pr := &rec.Participants[i]
		if err := c.publishOne(blobs, logEntryPath(pr), pr.Payload); err != nil {
			if errors.Is(err, errForeignEntry) && rec.State == StateCommitted {
				// A committed transaction's entry was replaced out-of-band
				// (e.g. VACUUM/compaction rewrote history). Nothing safe to
				// do; surface it.
				return fmt.Errorf("committed txn %s: %w", rec.ID.Short(), err)
			}
			return err
		}
	}
	if err := c.updateRecord(msID, rec.ID, func(r *intentRecord) error {
		if r.State == StateAborted {
			return fmt.Errorf("txn %s: record flipped ABORTED during roll-forward", r.ID.Short())
		}
		r.State = StateCommitted
		for i := range r.Participants {
			r.Participants[i].Published = true
		}
		return nil
	}); err != nil {
		return err
	}
	c.metrics.RecoveredForward.Inc()
	if takeover {
		c.metrics.Commits.Inc()
	}
	// Announce visibility exactly as a live commit would have.
	for i := range rec.Participants {
		pr := &rec.Participants[i]
		c.Service.Bus().Publish(events.Event{
			Metastore: msID, Op: events.OpCommit,
			EntityID: pr.EntityID, FullName: pr.Name,
			Principal: rec.Principal, Detail: "txn " + rec.ID.Short() + " (recovered)",
		})
		c.auditRecover(msID, rec, pr, "TxnRecoverForward", fmt.Sprintf("published v%d", pr.Target))
	}
	return nil
}

// rollBack decides ABORTED for an expired PREPARED record, then compensates:
// delete any entries that are verifiably ours and all staged files. The
// durable ABORTED mark lands before any deletion (same ordering as a live
// abort), and cleanup failure leaves the record Dirty for the next sweep.
func (c *Coordinator) rollBack(msID string, rec *intentRecord, blobs delta.Blobs) error {
	if err := c.updateRecord(msID, rec.ID, func(r *intentRecord) error {
		if r.State != StatePrepared {
			return fmt.Errorf("%w: record already %s", ErrFenced, r.State)
		}
		r.State = StateAborted
		r.Dirty = true
		return nil
	}); err != nil {
		return err
	}
	c.metrics.Aborts.Inc()
	c.metrics.RecoveredBack.Inc()
	for i := range rec.Participants {
		pr := &rec.Participants[i]
		c.auditRecover(msID, rec, pr, "TxnRecoverBack", "presumed abort: lease expired")
	}
	return c.finishCleanup(msID, rec, blobs)
}

// cleanupAbort re-runs compensation for a Dirty ABORTED record.
func (c *Coordinator) cleanupAbort(msID string, rec *intentRecord, blobs delta.Blobs) error {
	if err := c.finishCleanup(msID, rec, blobs); err != nil {
		return err
	}
	c.metrics.RecoverCleaned.Inc()
	return nil
}

// finishCleanup deletes an aborted transaction's published entries (ours
// only, by byte comparison) and staged files, then clears Dirty — or
// records the failure durably and leaves Dirty set.
func (c *Coordinator) finishCleanup(msID string, rec *intentRecord, blobs delta.Blobs) error {
	var errs []error
	for i := range rec.Participants {
		pr := &rec.Participants[i]
		if len(pr.Payload) > 0 {
			if err := c.deleteIfOurs(blobs, logEntryPath(pr), pr.Payload); err != nil {
				errs = append(errs, fmt.Errorf("compensate %s: %w", pr.Name, err))
			}
		}
		if err := c.deleteStaged(blobs, pr.Staged); err != nil {
			errs = append(errs, err)
		}
	}
	cleanupErr := errors.Join(errs...)
	if uerr := c.updateRecord(msID, rec.ID, func(r *intentRecord) error {
		if cleanupErr != nil {
			r.CleanupErr = cleanupErr.Error()
		} else {
			r.Dirty = false
			r.CleanupErr = ""
		}
		return nil
	}); uerr != nil {
		return errors.Join(cleanupErr, uerr)
	}
	return cleanupErr
}

// logEntryPath is the Delta log object path for a participant's target
// version (mirrors delta.Table.LogPath without needing a handle).
func logEntryPath(pr *participantRecord) string {
	return fmt.Sprintf("%s/_delta_log/%020d.json", pr.TablePath, pr.Target)
}

// auditRecover appends the audit record for a recovery action on behalf of
// the original principal (there is no live request context to trace).
func (c *Coordinator) auditRecover(msID string, rec *intentRecord, pr *participantRecord, op, detail string) {
	c.Service.Audit().Append(audit.Record{
		Kind: audit.KindAPIRequest, Metastore: msID, Principal: rec.Principal,
		Operation: op, Securable: pr.EntityID, Allowed: true, Detail: detail,
		Extra: map[string]string{"txn": string(rec.ID), "table": pr.Name},
	})
}

// RecoverAll sweeps every metastore attached to this node.
func (c *Coordinator) RecoverAll() (RecoverStats, error) {
	var stats RecoverStats
	var errs []error
	for _, msID := range c.Service.Metastores() {
		st, err := c.Recover(msID)
		stats.add(st)
		if err != nil {
			errs = append(errs, fmt.Errorf("metastore %s: %w", msID, err))
		}
	}
	return stats, errors.Join(errs...)
}

// StartSweeper runs RecoverAll every interval until Close. Call once, at
// startup, after an initial synchronous RecoverAll.
func (c *Coordinator) StartSweeper(interval time.Duration) {
	if interval <= 0 || c.sweepStop != nil {
		return
	}
	c.sweepStop = make(chan struct{})
	c.sweepDone = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				c.RecoverAll() // errors are visible in metrics and records
			}
		}
	}(c.sweepStop, c.sweepDone)
}

// Close stops the periodic sweeper, if running.
func (c *Coordinator) Close() {
	if c.sweepStop == nil {
		return
	}
	close(c.sweepStop)
	<-c.sweepDone
	c.sweepStop = nil
	c.sweepDone = nil
}

