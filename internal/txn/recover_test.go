package txn

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"unitycatalog/internal/audit"
	"unitycatalog/internal/catalog"
	"unitycatalog/internal/clock"
	"unitycatalog/internal/delta"
	"unitycatalog/internal/faults"
	"unitycatalog/internal/ids"
	"unitycatalog/internal/retry"
	"unitycatalog/internal/store"
)

// errCrash simulates the coordinator process dying at a protocol step.
var errCrash = errors.New("simulated coordinator crash")

// setupClock is setup with a controllable clock, for lease-expiry tests.
func setupClock(t *testing.T) (*Coordinator, catalog.Ctx, map[string]*delta.Table, *clock.Fake) {
	t.Helper()
	db, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	fake := clock.NewFake(time.Unix(1_700_000_000, 0))
	svc, err := catalog.New(catalog.Config{DB: db, Clock: fake})
	if err != nil {
		t.Fatal(err)
	}
	svc.CreateMetastore("ms1", "m", "r", "admin", "s3://root/ms1")
	admin := catalog.Ctx{Principal: "admin", Metastore: "ms1", TrustedEngine: true}
	svc.CreateCatalog(admin, "bank", "")
	svc.CreateSchema(admin, "bank", "ledger", "")
	schema := delta.Schema{Fields: []delta.SchemaField{
		{Name: "account", Type: delta.TypeInt64}, {Name: "delta_amount", Type: delta.TypeFloat64},
	}}
	tables := map[string]*delta.Table{}
	for _, name := range []string{"checking", "savings", "auditlog"} {
		e, err := svc.CreateTable(admin, "bank.ledger", name, catalog.TableSpec{Columns: []catalog.ColumnInfo{
			{Name: "account", Type: "BIGINT"}, {Name: "delta_amount", Type: "DOUBLE"},
		}}, "")
		if err != nil {
			t.Fatal(err)
		}
		dt, err := delta.Create(delta.ServiceBlobs{Store: svc.Cloud()}, e.StoragePath, name, schema, nil)
		if err != nil {
			t.Fatal(err)
		}
		tables["bank.ledger."+name] = dt
	}
	return NewCoordinator(svc), admin, tables, fake
}

// crashingTx stages a two-table transfer and commits with a crash hook that
// fires once at the given point, returning the stopped-short transaction.
func crashingTx(t *testing.T, c *Coordinator, admin catalog.Ctx, point string) *Txn {
	t.Helper()
	tx, err := c.Begin(admin, []string{"bank.ledger.checking", "bank.ledger.savings"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.StageAppend("bank.ledger.checking", batchOf(t, [2]float64{1, -100})); err != nil {
		t.Fatal(err)
	}
	if err := tx.StageAppend("bank.ledger.savings", batchOf(t, [2]float64{1, +100})); err != nil {
		t.Fatal(err)
	}
	c.Crash = func(p string) error {
		if p == point {
			return errCrash
		}
		return nil
	}
	if err := tx.Commit(); !errors.Is(err, errCrash) {
		t.Fatalf("commit at %s: %v", point, err)
	}
	c.Crash = nil
	return tx
}

// assertAllOrNothing checks the core recovery invariant: either every
// participant is visible at the transaction's version or none is.
func assertAllOrNothing(t *testing.T, tables map[string]*delta.Table, names []string) int64 {
	t.Helper()
	var rows []int64
	for _, n := range names {
		rows = append(rows, totalRows(t, tables[n]))
	}
	for _, r := range rows[1:] {
		if r != rows[0] {
			t.Fatalf("partial visibility: rows per table = %v", rows)
		}
	}
	return rows[0]
}

func TestRecoverRollsBackWhenNothingPublished(t *testing.T) {
	c, admin, tables, fake := setupClock(t)
	before := c.Service.Cloud().ObjectCount("")
	tx := crashingTx(t, c, admin, "after_intent")

	// Within the lease the record is untouchable.
	fresh := NewCoordinator(c.Service)
	st, err := fresh.Recover("ms1")
	if err != nil || st.Skipped != 1 || st.Back+st.Forward != 0 {
		t.Fatalf("within-lease sweep = %+v, %v", st, err)
	}

	fake.Advance(time.Minute)
	st, err = fresh.Recover("ms1")
	if err != nil || st.Back != 1 {
		t.Fatalf("post-lease sweep = %+v, %v", st, err)
	}
	if n := assertAllOrNothing(t, tables, []string{"bank.ledger.checking", "bank.ledger.savings"}); n != 0 {
		t.Fatalf("rolled-back txn left %d visible rows", n)
	}
	state, _, err := fresh.Record("ms1", tx.ID)
	if err != nil || state != "ABORTED" {
		t.Fatalf("record = %s, %v", state, err)
	}
	// Staged data files were cleaned up: storage is back to its pre-txn shape.
	if after := c.Service.Cloud().ObjectCount(""); after != before {
		t.Fatalf("object count %d -> %d: orphaned blobs", before, after)
	}
}

func TestRecoverRollsForwardWhenPartiallyPublished(t *testing.T) {
	for _, point := range []string{"before_publish:bank.ledger.savings", "before_flip"} {
		t.Run(point, func(t *testing.T) {
			c, admin, tables, fake := setupClock(t)
			tx := crashingTx(t, c, admin, point)

			fake.Advance(time.Minute)
			fresh := NewCoordinator(c.Service)
			st, err := fresh.Recover("ms1")
			if err != nil || st.Forward != 1 {
				t.Fatalf("sweep = %+v, %v", st, err)
			}
			if n := assertAllOrNothing(t, tables, []string{"bank.ledger.checking", "bank.ledger.savings"}); n != 1 {
				t.Fatalf("rolled-forward txn shows %d rows per table, want 1", n)
			}
			state, committed, err := fresh.Record("ms1", tx.ID)
			if err != nil || state != "COMMITTED" || len(committed) != 2 {
				t.Fatalf("record = %s %v, %v", state, committed, err)
			}
			// A second sweep finds nothing to do.
			if st, err := fresh.Recover("ms1"); err != nil || st.Forward+st.Back+st.Cleaned != 0 {
				t.Fatalf("idempotent re-sweep = %+v, %v", st, err)
			}
		})
	}
}

func TestRecoverRollsForwardCommittedRecord(t *testing.T) {
	// Crash after the COMMITTED flip but pretend the progress flags were
	// lost: clear them directly and delete one published entry to simulate
	// the flip landing with a participant's publish outcome unknown.
	c, admin, tables, fake := setupClock(t)
	tx, err := c.Begin(admin, []string{"bank.ledger.checking", "bank.ledger.savings"})
	if err != nil {
		t.Fatal(err)
	}
	tx.StageAppend("bank.ledger.checking", batchOf(t, [2]float64{1, -1}))
	tx.StageAppend("bank.ledger.savings", batchOf(t, [2]float64{1, 1}))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c.updateRecord("ms1", tx.ID, func(r *intentRecord) error {
		for i := range r.Participants {
			r.Participants[i].Published = false
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	fake.Advance(time.Minute)
	fresh := NewCoordinator(c.Service)
	st, err := fresh.Recover("ms1")
	if err != nil || st.Forward != 1 {
		t.Fatalf("sweep = %+v, %v", st, err)
	}
	if n := assertAllOrNothing(t, tables, []string{"bank.ledger.checking", "bank.ledger.savings"}); n != 1 {
		t.Fatalf("committed txn shows %d rows per table, want 1", n)
	}
}

func TestRecoverRollsBackWhenForeignWriterWon(t *testing.T) {
	// Crash before any publish, then let an out-of-band writer take
	// savings' target version. Recovery must roll back, not overwrite.
	c, admin, tables, fake := setupClock(t)
	tx := crashingTx(t, c, admin, "before_publish:bank.ledger.checking")
	if _, err := tables["bank.ledger.savings"].Append(batchOf(t, [2]float64{9, 9})); err != nil {
		t.Fatal(err)
	}

	fake.Advance(time.Minute)
	fresh := NewCoordinator(c.Service)
	st, err := fresh.Recover("ms1")
	if err != nil || st.Back != 1 {
		t.Fatalf("sweep = %+v, %v", st, err)
	}
	state, _, _ := fresh.Record("ms1", tx.ID)
	if state != "ABORTED" {
		t.Fatalf("record = %s, want ABORTED", state)
	}
	// The foreign append survived untouched; our transaction left nothing.
	if got := totalRows(t, tables["bank.ledger.savings"]); got != 1 {
		t.Fatalf("savings rows = %d, want only the foreign append", got)
	}
	if got := totalRows(t, tables["bank.ledger.checking"]); got != 0 {
		t.Fatalf("checking rows = %d, want 0", got)
	}
}

func TestStaleCoordinatorIsFenced(t *testing.T) {
	c, admin, _, fake := setupClock(t)
	crashingTx(t, c, admin, "after_intent")

	// A new coordinator recovers, bumping the epoch past c's.
	fake.Advance(time.Minute)
	fresh := NewCoordinator(c.Service)
	if st, err := fresh.Recover("ms1"); err != nil || st.Back != 1 {
		t.Fatalf("sweep = %+v, %v", st, err)
	}

	// The stale coordinator can no longer decide transactions.
	tx, err := c.Begin(admin, []string{"bank.ledger.checking"})
	if err != nil {
		t.Fatal(err)
	}
	tx.StageAppend("bank.ledger.checking", batchOf(t, [2]float64{1, 1}))
	if err := tx.Commit(); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale commit: %v", err)
	}
}

func TestDirtyAbortRecleanedBySweep(t *testing.T) {
	c, admin, _, fake := setupClock(t)
	before := c.Service.Cloud().ObjectCount("")
	tx, err := c.Begin(admin, []string{"bank.ledger.checking"})
	if err != nil {
		t.Fatal(err)
	}
	tx.StageAppend("bank.ledger.checking", batchOf(t, [2]float64{1, 1}))

	// Make every delete fail: Abort must report the failure and leave the
	// record Dirty instead of silently leaking the staged file.
	inj := faults.New(7)
	inj.AddRule(faults.Rule{Op: "delete", Class: faults.Unavailable, P: 1})
	c.Service.Cloud().SetFaults(inj)
	if err := tx.Abort(); err == nil {
		t.Fatal("abort with failing deletes should return the cleanup error")
	}
	c.Service.Cloud().SetFaults(nil)

	snap, _ := c.Service.DB().Snapshot("ms1")
	b, _ := snap.Get(storeTable, string(tx.ID))
	snap.Close()
	rec, err := decodeRecord(b)
	if err != nil || !rec.Dirty || rec.CleanupErr == "" {
		t.Fatalf("record after failed cleanup = %+v, %v", rec, err)
	}

	// The sweep retries the compensation once storage heals.
	fake.Advance(time.Minute)
	st, err := c.Recover("ms1")
	if err != nil || st.Cleaned != 1 {
		t.Fatalf("sweep = %+v, %v", st, err)
	}
	if after := c.Service.Cloud().ObjectCount(""); after != before {
		t.Fatalf("object count %d -> %d: staged file leaked", before, after)
	}
}

func TestCommitRetriesTransientPublishFaults(t *testing.T) {
	c, admin, tables, _ := setupClock(t)
	// Every class of injected fault on the publish path is retryable
	// because the publish is idempotent frozen bytes.
	inj := faults.New(11)
	inj.AddRule(faults.Rule{Op: "put_if_absent", PathContains: "_delta_log", Class: faults.Timeout, P: 0.5})
	inj.AddRule(faults.Rule{Op: "get", PathContains: "_delta_log", Class: faults.Transient, P: 0.2})
	defer c.Service.Cloud().SetFaults(nil)

	fast := retry.Policy{MaxAttempts: 64, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond, Sleep: func(time.Duration) {}}
	c.opts.PublishRetry = fast
	for i := 0; i < 10; i++ {
		// Begin/stage run fault-free (the data plane has its own retry
		// story); the coordinator's validate+publish path runs under fire.
		c.Service.Cloud().SetFaults(nil)
		tx, err := c.Begin(admin, []string{"bank.ledger.checking", "bank.ledger.savings"})
		if err != nil {
			t.Fatal(err)
		}
		tx.StageAppend("bank.ledger.checking", batchOf(t, [2]float64{float64(i), -1}))
		tx.StageAppend("bank.ledger.savings", batchOf(t, [2]float64{float64(i), 1}))
		c.Service.Cloud().SetFaults(inj)
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d under faults: %v", i, err)
		}
	}
	c.Service.Cloud().SetFaults(nil)
	if n := assertAllOrNothing(t, tables, []string{"bank.ledger.checking", "bank.ledger.savings"}); n != 10 {
		t.Fatalf("rows per table = %d, want 10", n)
	}
	if c.metrics.PublishRetries.Load() == 0 {
		t.Fatal("expected publish retries under injected faults")
	}
}

func TestAbortDeletesStagedFiles(t *testing.T) {
	c, admin, _, _ := setupClock(t)
	before := c.Service.Cloud().ObjectCount("")
	tx, err := c.Begin(admin, []string{"bank.ledger.checking", "bank.ledger.savings"})
	if err != nil {
		t.Fatal(err)
	}
	tx.StageAppend("bank.ledger.checking", batchOf(t, [2]float64{1, 1}))
	tx.StageAppend("bank.ledger.savings", batchOf(t, [2]float64{2, 2}))
	if c.Service.Cloud().ObjectCount("") <= before {
		t.Fatal("staging should have written data files")
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if after := c.Service.Cloud().ObjectCount(""); after != before {
		t.Fatalf("object count %d -> %d: abort leaked staged files", before, after)
	}
	if err := tx.Abort(); !errors.Is(err, ErrAborted) {
		t.Fatalf("second abort: %v", err)
	}
}

func TestTxnMethodsAfterCompletion(t *testing.T) {
	c, admin, _, _ := setupClock(t)
	tx, err := c.Begin(admin, []string{"bank.ledger.checking"})
	if err != nil {
		t.Fatal(err)
	}
	tx.StageAppend("bank.ledger.checking", batchOf(t, [2]float64{1, 1}))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read("bank.ledger.checking"); !errors.Is(err, ErrAborted) {
		t.Fatalf("Read after commit: %v", err)
	}
	if _, err := tx.Scan("bank.ledger.checking", nil, nil); !errors.Is(err, ErrAborted) {
		t.Fatalf("Scan after commit: %v", err)
	}
	if err := tx.Stage("bank.ledger.checking"); !errors.Is(err, ErrAborted) {
		t.Fatalf("Stage after commit: %v", err)
	}
	if err := tx.StageAppend("bank.ledger.checking", batchOf(t, [2]float64{1, 1})); !errors.Is(err, ErrAborted) {
		t.Fatalf("StageAppend after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatalf("second Commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrAborted) {
		t.Fatalf("Abort after commit: %v", err)
	}
}

func TestRecordErrorPaths(t *testing.T) {
	c, _, _, _ := setupClock(t)
	if _, _, err := c.Record("ms1", ids.New()); !errors.Is(err, catalog.ErrNotFound) {
		t.Fatalf("missing record: %v", err)
	}
	// A corrupt record is a decode error from Record and is skipped (and
	// counted) by the recovery sweep rather than wedging it.
	bad := ids.New()
	if _, err := c.Service.DB().Update("ms1", func(tx *store.Tx) error {
		tx.Put(storeTable, string(bad), []byte("{not json"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Record("ms1", bad); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt record: %v", err)
	}
	st, err := c.Recover("ms1")
	if err != nil || st.Corrupt != 1 {
		t.Fatalf("sweep over corrupt record = %+v, %v", st, err)
	}
}

func TestLegacyRecordStillDecodes(t *testing.T) {
	// Records written by the pre-recovery protocol (WAL replay can surface
	// them) still answer Record and are left alone by the sweep.
	c, _, _, _ := setupClock(t)
	id := ids.New()
	legacy := fmt.Sprintf(`{"id":%q,"principal":"admin","tables":{"bank.ledger.checking":3},"state":"COMMITTED"}`, id)
	if _, err := c.Service.DB().Update("ms1", func(tx *store.Tx) error {
		tx.Put(storeTable, string(id), []byte(legacy))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	state, tables, err := c.Record("ms1", id)
	if err != nil || state != "COMMITTED" || tables["bank.ledger.checking"] != 3 {
		t.Fatalf("legacy record = %s %v, %v", state, tables, err)
	}
	st, err := c.Recover("ms1")
	if err != nil || st.Forward+st.Back+st.Cleaned != 0 {
		t.Fatalf("sweep over legacy record = %+v, %v", st, err)
	}
}

func TestTxnAuditTrail(t *testing.T) {
	c, admin, _, _ := setupClock(t)
	tx, err := c.Begin(admin, []string{"bank.ledger.checking", "bank.ledger.savings"})
	if err != nil {
		t.Fatal(err)
	}
	tx.StageAppend("bank.ledger.checking", batchOf(t, [2]float64{1, -1}))
	tx.StageAppend("bank.ledger.savings", batchOf(t, [2]float64{1, 1}))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	byOp := map[string]int{}
	for _, r := range c.Service.Audit().Filter(func(r audit.Record) bool {
		return r.Extra["txn"] == string(tx.ID)
	}) {
		byOp[r.Operation]++
		if r.Securable == ids.Nil {
			t.Fatalf("audit %s without securable", r.Operation)
		}
	}
	if byOp["TxnBegin"] != 2 || byOp["TxnCommit"] != 2 {
		t.Fatalf("audit ops = %v, want 2 TxnBegin + 2 TxnCommit", byOp)
	}

	tx2, _ := c.Begin(admin, []string{"bank.ledger.checking"})
	tx2.Abort()
	aborts := c.Service.Audit().Filter(func(r audit.Record) bool {
		return r.Operation == "TxnAbort" && r.Extra["txn"] == string(tx2.ID)
	})
	if len(aborts) != 1 {
		t.Fatalf("abort audits = %d, want 1", len(aborts))
	}
}
