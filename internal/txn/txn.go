// Package txn implements multi-table, multi-statement transactions over
// Delta tables coordinated by the catalog — the paper's Section 6.3: single-
// table transactions come from the storage layer's atomic operations, but
// spanning multiple tables (whose data may live in different buckets)
// requires the centralized metadata store to act as the commit coordinator
// for "catalog-owned" tables.
//
// Protocol:
//
//  1. Begin authorizes MODIFY on every participant table and snapshots each
//     table's current log version.
//  2. The application stages per-table actions (StageAppend writes data
//     files eagerly; they are invisible until commit).
//  3. Commit serializes through the coordinator's per-metastore lock,
//     verifies no participant advanced past its snapshot (optimistic
//     concurrency), durably records the transaction intent in the catalog's
//     ACID store, then publishes every table's next log entry. If any
//     publish fails (an out-of-band writer raced on a table that should be
//     catalog-owned), the already-published entries of this transaction are
//     compensated (removed) and the transaction aborts — all or nothing.
package txn

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/cloudsim"
	"unitycatalog/internal/delta"
	"unitycatalog/internal/erm"
	"unitycatalog/internal/events"
	"unitycatalog/internal/ids"
	"unitycatalog/internal/store"
)

// Common errors.
var (
	// ErrConflict means a participant table advanced past the transaction's
	// snapshot; retry with fresh state.
	ErrConflict = errors.New("txn: serialization conflict")
	// ErrAborted is returned by operations on a finished transaction.
	ErrAborted = errors.New("txn: transaction is no longer active")
)

// Coordinator commits multi-table transactions through the catalog.
type Coordinator struct {
	Service *catalog.Service

	mu sync.Mutex // serializes commits per coordinator (per metastore set)
}

// NewCoordinator returns a Coordinator over the service.
func NewCoordinator(svc *catalog.Service) *Coordinator {
	return &Coordinator{Service: svc}
}

// participant is one table in a transaction.
type participant struct {
	full    string
	entity  *erm.Entity
	table   *delta.Table
	base    *delta.Snapshot
	actions []delta.Action
}

// Txn is an in-flight multi-table transaction.
type Txn struct {
	ID    ids.ID
	coord *Coordinator
	ctx   catalog.Ctx
	parts map[string]*participant
	done  bool
}

// Begin opens a transaction over the named tables, checking MODIFY on each
// and pinning each table's current version.
func (c *Coordinator) Begin(ctx catalog.Ctx, tables []string) (*Txn, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("%w: no tables", catalog.ErrInvalidArgument)
	}
	resp, err := c.Service.Resolve(ctx, catalog.ResolveRequest{
		Names: tables, WithCredentials: true, Access: cloudsim.AccessReadWrite,
	})
	if err != nil {
		return nil, err
	}
	t := &Txn{ID: ids.New(), coord: c, ctx: ctx, parts: map[string]*participant{}}
	for _, full := range tables {
		ra := resp.Assets[full]
		if ra == nil || ra.Table == nil || ra.Credential == nil {
			return nil, fmt.Errorf("%w: %s is not a writable table", catalog.ErrInvalidArgument, full)
		}
		dt := delta.NewTable(ra.Entity.StoragePath, delta.TokenBlobs{
			Store: c.Service.Cloud(), Token: ra.Credential.Credential.Token,
		})
		snap, err := dt.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("txn: open %s: %w", full, err)
		}
		t.parts[full] = &participant{full: full, entity: ra.Entity, table: dt, base: snap}
	}
	return t, nil
}

// Read returns the transaction's pinned snapshot of a participant table,
// for reads at a consistent point across all participants.
func (t *Txn) Read(full string) (*delta.Snapshot, error) {
	p, ok := t.parts[full]
	if !ok {
		return nil, fmt.Errorf("%w: %s is not a participant", catalog.ErrInvalidArgument, full)
	}
	return p.base, nil
}

// Scan reads from a participant at the transaction snapshot.
func (t *Txn) Scan(full string, columns []string, preds []delta.Predicate) (*delta.ScanResult, error) {
	p, ok := t.parts[full]
	if !ok {
		return nil, fmt.Errorf("%w: %s is not a participant", catalog.ErrInvalidArgument, full)
	}
	return p.table.Scan(p.base, columns, preds)
}

// Stage buffers raw log actions for a participant.
func (t *Txn) Stage(full string, actions ...delta.Action) error {
	if t.done {
		return ErrAborted
	}
	p, ok := t.parts[full]
	if !ok {
		return fmt.Errorf("%w: %s is not a participant", catalog.ErrInvalidArgument, full)
	}
	p.actions = append(p.actions, actions...)
	return nil
}

// StageAppend writes the batch as a data file now (invisible until commit)
// and stages the corresponding AddFile action.
func (t *Txn) StageAppend(full string, batch *delta.Batch) error {
	if t.done {
		return ErrAborted
	}
	p, ok := t.parts[full]
	if !ok {
		return fmt.Errorf("%w: %s is not a participant", catalog.ErrInvalidArgument, full)
	}
	if batch.NumRows == 0 {
		return nil
	}
	data := delta.EncodeBatch(batch)
	name := fmt.Sprintf("txn-%s-%s.dpf", t.ID.Short(), ids.New())
	if err := p.table.Blobs.Put(p.table.Path+"/"+name, data); err != nil {
		return err
	}
	p.actions = append(p.actions, delta.Action{Add: &delta.AddFile{
		Path: name, Size: int64(len(data)), DataChange: true,
		Stats: delta.ComputeStats(batch),
	}})
	return nil
}

// txnRecord is the durable intent written to the catalog store.
type txnRecord struct {
	ID        ids.ID           `json:"id"`
	Principal string           `json:"principal"`
	Tables    map[string]int64 `json:"tables"` // full name -> committed version
	State     string           `json:"state"`  // COMMITTED, ABORTED
}

// storeTable is the catalog store table holding transaction records.
const storeTable = "multitable_txn"

// Commit atomically publishes all staged actions. On conflict nothing is
// applied and ErrConflict is returned.
func (t *Txn) Commit() error {
	if t.done {
		return ErrAborted
	}
	t.done = true
	c := t.coord
	c.mu.Lock()
	defer c.mu.Unlock()

	// Validate: no participant advanced past its pinned version.
	for _, p := range t.parts {
		cur, err := p.table.Snapshot()
		if err != nil {
			return err
		}
		if cur.Version != p.base.Version {
			return fmt.Errorf("%w: %s moved v%d -> v%d", ErrConflict, p.full, p.base.Version, cur.Version)
		}
	}

	// Durably record intent in the catalog's ACID store before touching
	// any log: recovery can tell a committed transaction from an aborted
	// one.
	rec := txnRecord{ID: t.ID, Principal: string(t.ctx.Principal), Tables: map[string]int64{}, State: "COMMITTED"}
	for _, p := range t.parts {
		rec.Tables[p.full] = p.base.Version + 1
	}
	recB, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	db := c.Service.DB()
	if _, err := db.Update(t.ctx.Metastore, func(tx *store.Tx) error {
		tx.Put(storeTable, string(t.ID), recB)
		return nil
	}); err != nil {
		return err
	}

	// Publish each participant's next log version. Under catalog ownership
	// the coordinator is the only committer, so these cannot conflict; if
	// an out-of-band writer raced anyway, compensate and abort.
	var published []*participant
	for _, p := range t.parts {
		op := fmt.Sprintf("MULTI-TABLE TXN %s", t.ID.Short())
		if _, err := p.table.Commit(p.base, p.actions, op); err != nil {
			for _, q := range published {
				q.table.Blobs.Delete(logPath(q.table, q.base.Version+1))
			}
			t.markAborted()
			if errors.Is(err, delta.ErrConflict) {
				return fmt.Errorf("%w: %s (out-of-band writer)", ErrConflict, p.full)
			}
			return err
		}
		published = append(published, p)
	}
	// Announce a table-data commit event per participant.
	for _, p := range t.parts {
		c.Service.Bus().Publish(events.Event{
			Metastore: t.ctx.Metastore, Op: events.OpCommit,
			EntityID: p.entity.ID, Type: string(p.entity.Type), FullName: p.full,
			Principal: string(t.ctx.Principal), Detail: "txn " + t.ID.Short(),
		})
	}
	return nil
}

// markAborted flips the durable record to ABORTED (best effort).
func (t *Txn) markAborted() {
	rec := txnRecord{ID: t.ID, Principal: string(t.ctx.Principal), State: "ABORTED"}
	if b, err := json.Marshal(rec); err == nil {
		t.coord.Service.DB().Update(t.ctx.Metastore, func(tx *store.Tx) error {
			tx.Put(storeTable, string(t.ID), b)
			return nil
		})
	}
}

// Abort discards the transaction (staged data files become garbage for
// VACUUM; they were never referenced by any log).
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.markAborted()
}

// logPath mirrors the delta package's log naming for compensation.
func logPath(tbl *delta.Table, version int64) string {
	return fmt.Sprintf("%s/_delta_log/%020d.json", tbl.Path, version)
}

// Record fetches a transaction's durable record (for tests and tooling).
func (c *Coordinator) Record(msID string, id ids.ID) (state string, tables map[string]int64, err error) {
	snap, err := c.Service.DB().Snapshot(msID)
	if err != nil {
		return "", nil, err
	}
	defer snap.Close()
	b, ok := snap.Get(storeTable, string(id))
	if !ok {
		return "", nil, fmt.Errorf("%w: txn %s", catalog.ErrNotFound, id.Short())
	}
	var rec txnRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return "", nil, err
	}
	return rec.State, rec.Tables, nil
}
