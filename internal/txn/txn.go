// Package txn implements multi-table, multi-statement transactions over
// Delta tables coordinated by the catalog — the paper's Section 6.3: single-
// table transactions come from the storage layer's atomic operations, but
// spanning multiple tables (whose data may live in different buckets)
// requires the centralized metadata store to act as the commit coordinator
// for "catalog-owned" tables.
//
// Protocol (crash-recoverable two-phase commit with roll-forward):
//
//  1. Begin authorizes MODIFY on every participant table and snapshots each
//     table's current log version.
//  2. The application stages per-table actions (StageAppend writes data
//     files eagerly; they are invisible until commit and tracked for
//     cleanup on abort).
//  3. Commit serializes through the coordinator, verifies no participant
//     advanced past its snapshot (optimistic concurrency), freezes each
//     participant's log entry as exact bytes, and durably writes a PREPARED
//     intent record — participants, pinned versions, frozen payloads, lease
//     — through the store's group-commit WAL.
//  4. Each participant's entry is published via idempotent PutIfAbsent of
//     the frozen bytes, with per-table progress recorded durably as it
//     lands; storage faults retry, a foreign entry compensates and aborts.
//  5. The record flips to COMMITTED (or ABORTED with tracked cleanup).
//
// If the coordinator dies at any step, Recover finishes the job: PREPARED
// records past their lease roll back (or forward, if publishes already
// landed), partially published COMMITTED records roll forward, and dirty
// aborts re-run compensation — see recover.go for the invariants.
package txn

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"unitycatalog/internal/audit"
	"unitycatalog/internal/catalog"
	"unitycatalog/internal/cloudsim"
	"unitycatalog/internal/delta"
	"unitycatalog/internal/erm"
	"unitycatalog/internal/events"
	"unitycatalog/internal/ids"
)

// participant is one table in a transaction.
type participant struct {
	full   string
	entity *erm.Entity
	// table reads and stages through the principal's vended credential;
	// ctable is the coordinator's control-plane handle (standing service
	// access) used for validation, publish, and compensation — recovery has
	// no vended token, so the commit path must not depend on one either.
	table   *delta.Table
	ctable  *delta.Table
	base    *delta.Snapshot
	actions []delta.Action
	staged  []string // full blob paths written by StageAppend
}

// Txn is an in-flight multi-table transaction.
type Txn struct {
	ID    ids.ID
	coord *Coordinator
	ctx   catalog.Ctx
	parts map[string]*participant
	order []string // deterministic participant order (sorted full names)
	done  bool
}

// Begin opens a transaction over the named tables, checking MODIFY on each
// and pinning each table's current version.
func (c *Coordinator) Begin(ctx catalog.Ctx, tables []string) (*Txn, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("%w: no tables", catalog.ErrInvalidArgument)
	}
	resp, err := c.Service.Resolve(ctx, catalog.ResolveRequest{
		Names: tables, WithCredentials: true, Access: cloudsim.AccessReadWrite,
	})
	if err != nil {
		return nil, err
	}
	t := &Txn{ID: ids.New(), coord: c, ctx: ctx, parts: map[string]*participant{}}
	for _, full := range tables {
		if _, dup := t.parts[full]; dup {
			continue
		}
		ra := resp.Assets[full]
		if ra == nil || ra.Table == nil || ra.Credential == nil {
			return nil, fmt.Errorf("%w: %s is not a writable table", catalog.ErrInvalidArgument, full)
		}
		dt := delta.NewTable(ra.Entity.StoragePath, delta.TokenBlobs{
			Store: c.Service.Cloud(), Token: ra.Credential.Credential.Token,
		})
		ct := delta.NewTable(ra.Entity.StoragePath, c.serviceBlobs())
		snap, err := dt.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("txn: open %s: %w", full, err)
		}
		t.parts[full] = &participant{full: full, entity: ra.Entity, table: dt, ctable: ct, base: snap}
		t.order = append(t.order, full)
	}
	sort.Strings(t.order)
	for _, full := range t.order {
		c.auditTxn(ctx, "TxnBegin", t.ID, t.parts[full], true, fmt.Sprintf("pinned v%d", t.parts[full].base.Version))
	}
	return t, nil
}

// auditTxn appends one multi-table transaction audit record per participant,
// carrying the resolved securable, the transaction ID, and the trace ID.
func (c *Coordinator) auditTxn(ctx catalog.Ctx, op string, id ids.ID, p *participant, allowed bool, detail string) {
	rec := audit.Record{
		Kind: audit.KindAPIRequest, Metastore: ctx.Metastore,
		Principal: string(ctx.Principal), Operation: op,
		Allowed: allowed, Detail: detail,
		Extra:   map[string]string{"txn": string(id)},
		TraceID: ctx.Trace.TraceID(),
	}
	if p != nil {
		rec.Securable = p.entity.ID
		rec.Extra["table"] = p.full
	}
	c.Service.Audit().Append(rec)
}

// ordered returns participants in deterministic publish order.
func (t *Txn) ordered() []*participant {
	out := make([]*participant, 0, len(t.order))
	for _, full := range t.order {
		out = append(out, t.parts[full])
	}
	return out
}

// Read returns the transaction's pinned snapshot of a participant table,
// for reads at a consistent point across all participants.
func (t *Txn) Read(full string) (*delta.Snapshot, error) {
	if t.done {
		return nil, ErrAborted
	}
	p, ok := t.parts[full]
	if !ok {
		return nil, fmt.Errorf("%w: %s is not a participant", catalog.ErrInvalidArgument, full)
	}
	return p.base, nil
}

// Scan reads from a participant at the transaction snapshot.
func (t *Txn) Scan(full string, columns []string, preds []delta.Predicate) (*delta.ScanResult, error) {
	if t.done {
		return nil, ErrAborted
	}
	p, ok := t.parts[full]
	if !ok {
		return nil, fmt.Errorf("%w: %s is not a participant", catalog.ErrInvalidArgument, full)
	}
	return p.table.Scan(p.base, columns, preds)
}

// Stage buffers raw log actions for a participant.
func (t *Txn) Stage(full string, actions ...delta.Action) error {
	if t.done {
		return ErrAborted
	}
	p, ok := t.parts[full]
	if !ok {
		return fmt.Errorf("%w: %s is not a participant", catalog.ErrInvalidArgument, full)
	}
	p.actions = append(p.actions, actions...)
	return nil
}

// StageAppend writes the batch as a data file now (invisible until commit)
// and stages the corresponding AddFile action. The file path is tracked so
// an abort can remove it instead of leaking it until VACUUM.
func (t *Txn) StageAppend(full string, batch *delta.Batch) error {
	if t.done {
		return ErrAborted
	}
	p, ok := t.parts[full]
	if !ok {
		return fmt.Errorf("%w: %s is not a participant", catalog.ErrInvalidArgument, full)
	}
	if batch.NumRows == 0 {
		return nil
	}
	data := delta.EncodeBatch(batch)
	name := fmt.Sprintf("txn-%s-%s.dpf", t.ID.Short(), ids.New())
	if err := p.table.Blobs.Put(p.table.Path+"/"+name, data); err != nil {
		return err
	}
	p.staged = append(p.staged, p.table.Path+"/"+name)
	p.actions = append(p.actions, delta.Action{Add: &delta.AddFile{
		Path: name, Size: int64(len(data)), DataChange: true,
		Stats: delta.ComputeStats(batch),
	}})
	return nil
}

// Commit atomically publishes all staged actions via the two-phase protocol.
// On conflict nothing is applied and ErrConflict is returned; on ErrFenced a
// newer coordinator owns the outcome and the caller must check Record.
func (t *Txn) Commit() error {
	if t.done {
		return ErrAborted
	}
	t.done = true
	c := t.coord
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()

	// Phase 0 — validate: no participant advanced past its pinned version.
	// Validation goes through the coordinator's control-plane handle so
	// injected storage faults retry instead of spuriously aborting.
	for _, p := range t.ordered() {
		cur, err := c.snapshotRetrying(p.ctable)
		if err != nil {
			return err
		}
		if cur.Version != p.base.Version {
			c.metrics.Conflicts.Inc()
			// Nothing durable exists yet; just drop the staged files.
			t.dropStaged()
			c.auditTxn(t.ctx, "TxnCommit", t.ID, p, false,
				fmt.Sprintf("conflict: moved v%d -> v%d", p.base.Version, cur.Version))
			return fmt.Errorf("%w: %s moved v%d -> v%d", ErrConflict, p.full, p.base.Version, cur.Version)
		}
	}

	// Phase 1 — prepare: freeze each participant's log entry as exact bytes
	// and durably record the intent. From here the transaction survives a
	// coordinator crash: the record alone is enough to finish or undo it.
	rec := &intentRecord{
		ID: t.ID, Principal: string(t.ctx.Principal), State: StatePrepared,
		LeaseExpiry: c.now().Add(c.opts.Lease),
	}
	for _, p := range t.ordered() {
		all := append(append([]delta.Action{}, p.actions...), delta.Action{
			CommitInfo: &delta.CommitInfo{
				Timestamp: c.now().UnixMilli(),
				Operation: fmt.Sprintf("MULTI-TABLE TXN %s", t.ID.Short()),
			},
		})
		payload, err := delta.EncodeCommit(all)
		if err != nil {
			return err
		}
		rec.Participants = append(rec.Participants, participantRecord{
			Name: p.full, EntityID: p.entity.ID, TablePath: p.ctable.Path,
			Base: p.base.Version, Target: p.base.Version + 1,
			Payload: payload, Staged: p.staged,
		})
	}
	if err := c.putRecord(t.ctx.Metastore, rec); err != nil {
		return err
	}
	c.metrics.PrepareSeconds.ObserveDuration(time.Since(start))
	if err := c.crashed("after_intent"); err != nil {
		return err
	}

	// Phase 2 — publish every participant's log entry in deterministic
	// order, recording durable progress as each lands.
	blobs := c.serviceBlobs()
	for i, p := range t.ordered() {
		if err := c.crashed("before_publish:" + p.full); err != nil {
			return err
		}
		if err := c.fenceCheck(t.ctx.Metastore, t.ID); err != nil {
			return err
		}
		pubStart := time.Now()
		path := p.ctable.LogPath(rec.Participants[i].Target)
		if err := c.publishOne(blobs, path, rec.Participants[i].Payload); err != nil {
			if errors.Is(err, errForeignEntry) {
				// An out-of-band writer took our target version: compensate
				// everything we published and abort.
				aerr := t.abortPrepared(blobs, rec, err)
				if aerr != nil {
					return aerr
				}
				c.metrics.Conflicts.Inc()
				return fmt.Errorf("%w: %s (out-of-band writer)", ErrConflict, p.full)
			}
			// Retries exhausted on a storage fault, or an unclassified
			// error: decide ABORTED while we still own the record.
			if aerr := t.abortPrepared(blobs, rec, err); aerr != nil {
				return errors.Join(err, aerr)
			}
			return err
		}
		c.metrics.PublishSeconds.ObserveDuration(time.Since(pubStart))
		if err := c.crashed("after_publish:" + p.full); err != nil {
			return err
		}
		idx, exp := i, c.now().Add(c.opts.Lease)
		if err := c.updateRecord(t.ctx.Metastore, t.ID, func(r *intentRecord) error {
			if r.State != StatePrepared {
				return fmt.Errorf("%w: record already %s", ErrFenced, r.State)
			}
			r.Participants[idx].Published = true
			r.LeaseExpiry = exp
			return nil
		}); err != nil {
			return err
		}
	}

	// Phase 3 — decide: flip the record to COMMITTED. This store write is
	// the commit point; after it, recovery only ever rolls forward.
	if err := c.crashed("before_flip"); err != nil {
		return err
	}
	if err := c.updateRecord(t.ctx.Metastore, t.ID, func(r *intentRecord) error {
		if r.State != StatePrepared {
			return fmt.Errorf("%w: record already %s", ErrFenced, r.State)
		}
		r.State = StateCommitted
		return nil
	}); err != nil {
		return err
	}
	c.metrics.Commits.Inc()
	c.metrics.CommitSeconds.ObserveDuration(time.Since(start))

	// Announce a table-data commit event and audit entry per participant.
	for i, p := range t.ordered() {
		c.Service.Bus().Publish(events.Event{
			Metastore: t.ctx.Metastore, Op: events.OpCommit,
			EntityID: p.entity.ID, Type: string(p.entity.Type), FullName: p.full,
			Principal: string(t.ctx.Principal), Detail: "txn " + t.ID.Short(),
		})
		c.auditTxn(t.ctx, "TxnCommit", t.ID, p, true, fmt.Sprintf("published v%d", rec.Participants[i].Target))
	}
	return nil
}

// dropStaged deletes this transaction's staged data files (best effort with
// visible failures: the joined error is returned, not swallowed).
func (t *Txn) dropStaged() error {
	var all []string
	for _, p := range t.parts {
		all = append(all, p.staged...)
	}
	return t.coord.deleteStaged(t.coord.serviceBlobs(), all)
}

// abortPrepared decides ABORTED for a PREPARED record this coordinator still
// owns, then compensates. Ordering matters: the durable ABORTED mark (with
// Dirty set) lands first, so a concurrent recovery can never roll the
// transaction forward after we started deleting its entries; compensation
// failures are recorded on the record (CleanupErr) and returned — never
// silently dropped — and the recovery sweep retries them until Dirty clears.
func (t *Txn) abortPrepared(blobs delta.Blobs, rec *intentRecord, cause error) error {
	c := t.coord
	if err := c.updateRecord(t.ctx.Metastore, t.ID, func(r *intentRecord) error {
		if r.State != StatePrepared {
			return fmt.Errorf("%w: record already %s", ErrFenced, r.State)
		}
		r.State = StateAborted
		r.Dirty = true
		return nil
	}); err != nil {
		return err
	}
	c.metrics.Aborts.Inc()

	var errs []error
	for i := range rec.Participants {
		pr := &rec.Participants[i]
		path := fmt.Sprintf("%s/_delta_log/%020d.json", pr.TablePath, pr.Target)
		if err := c.deleteIfOurs(blobs, path, pr.Payload); err != nil {
			errs = append(errs, fmt.Errorf("compensate %s: %w", pr.Name, err))
		}
		if err := c.deleteStaged(blobs, pr.Staged); err != nil {
			errs = append(errs, err)
		}
	}
	cleanupErr := errors.Join(errs...)
	if uerr := c.updateRecord(t.ctx.Metastore, t.ID, func(r *intentRecord) error {
		if cleanupErr != nil {
			r.CleanupErr = cleanupErr.Error()
		} else {
			r.Dirty = false
			r.CleanupErr = ""
		}
		return nil
	}); uerr != nil {
		errs = append(errs, uerr)
		cleanupErr = errors.Join(errs...)
	}
	for _, p := range t.ordered() {
		c.auditTxn(t.ctx, "TxnAbort", t.ID, p, true, "aborted: "+cause.Error())
	}
	return cleanupErr
}

// Abort discards the transaction before commit: its staged data files are
// deleted (not leaked until VACUUM) and a terminal ABORTED record is
// written. Cleanup or record failures are returned, and a failed cleanup
// leaves the record Dirty so the recovery sweep retries it. A second Abort
// (or Abort after Commit) returns ErrAborted.
func (t *Txn) Abort() error {
	if t.done {
		return ErrAborted
	}
	t.done = true
	c := t.coord
	c.mu.Lock()
	defer c.mu.Unlock()

	rec := &intentRecord{
		ID: t.ID, Principal: string(t.ctx.Principal), State: StateAborted,
	}
	for _, p := range t.ordered() {
		rec.Participants = append(rec.Participants, participantRecord{
			Name: p.full, EntityID: p.entity.ID, TablePath: p.ctable.Path,
			Base: p.base.Version, Target: p.base.Version + 1, Staged: p.staged,
		})
	}
	cleanupErr := t.dropStaged()
	if cleanupErr != nil {
		rec.Dirty = true
		rec.CleanupErr = cleanupErr.Error()
	}
	recErr := c.putRecord(t.ctx.Metastore, rec)
	c.metrics.Aborts.Inc()
	for _, p := range t.ordered() {
		c.auditTxn(t.ctx, "TxnAbort", t.ID, p, true, "aborted by caller")
	}
	return errors.Join(cleanupErr, recErr)
}
