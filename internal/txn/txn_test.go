package txn

import (
	"errors"
	"sync"
	"testing"
	"time"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/delta"
	"unitycatalog/internal/store"
)

func setup(t *testing.T) (*Coordinator, catalog.Ctx, map[string]*delta.Table) {
	t.Helper()
	db, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	svc, err := catalog.New(catalog.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	svc.CreateMetastore("ms1", "m", "r", "admin", "s3://root/ms1")
	admin := catalog.Ctx{Principal: "admin", Metastore: "ms1", TrustedEngine: true}
	svc.CreateCatalog(admin, "bank", "")
	svc.CreateSchema(admin, "bank", "ledger", "")
	schema := delta.Schema{Fields: []delta.SchemaField{
		{Name: "account", Type: delta.TypeInt64}, {Name: "delta_amount", Type: delta.TypeFloat64},
	}}
	tables := map[string]*delta.Table{}
	for _, name := range []string{"checking", "savings", "auditlog"} {
		e, err := svc.CreateTable(admin, "bank.ledger", name, catalog.TableSpec{Columns: []catalog.ColumnInfo{
			{Name: "account", Type: "BIGINT"}, {Name: "delta_amount", Type: "DOUBLE"},
		}}, "")
		if err != nil {
			t.Fatal(err)
		}
		dt, err := delta.Create(delta.ServiceBlobs{Store: svc.Cloud()}, e.StoragePath, name, schema, nil)
		if err != nil {
			t.Fatal(err)
		}
		tables["bank.ledger."+name] = dt
	}
	return NewCoordinator(svc), admin, tables
}

func batchOf(t *testing.T, rows ...[2]float64) *delta.Batch {
	t.Helper()
	b := delta.NewBatch(delta.Schema{Fields: []delta.SchemaField{
		{Name: "account", Type: delta.TypeInt64}, {Name: "delta_amount", Type: delta.TypeFloat64},
	}})
	for _, r := range rows {
		if err := b.AppendRow(int64(r[0]), r[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func totalRows(t *testing.T, dt *delta.Table) int64 {
	t.Helper()
	snap, err := dt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap.NumRecords()
}

func TestAtomicCrossTableCommit(t *testing.T) {
	c, admin, tables := setup(t)
	tx, err := c.Begin(admin, []string{"bank.ledger.checking", "bank.ledger.savings"})
	if err != nil {
		t.Fatal(err)
	}
	// A transfer: debit checking, credit savings — one atomic unit.
	if err := tx.StageAppend("bank.ledger.checking", batchOf(t, [2]float64{1, -100})); err != nil {
		t.Fatal(err)
	}
	if err := tx.StageAppend("bank.ledger.savings", batchOf(t, [2]float64{1, +100})); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if totalRows(t, tables["bank.ledger.checking"]) != 1 || totalRows(t, tables["bank.ledger.savings"]) != 1 {
		t.Fatal("both sides should be visible")
	}
	// Durable record says COMMITTED with both tables at v1.
	state, committed, err := c.Record("ms1", tx.ID)
	if err != nil || state != "COMMITTED" || len(committed) != 2 {
		t.Fatalf("record = %s %v, %v", state, committed, err)
	}
	// Reuse after commit is rejected.
	if err := tx.Stage("bank.ledger.checking"); !errors.Is(err, ErrAborted) {
		t.Fatalf("stage after commit: %v", err)
	}
}

func TestConflictAbortsAtomically(t *testing.T) {
	c, admin, tables := setup(t)
	tx, err := c.Begin(admin, []string{"bank.ledger.checking", "bank.ledger.savings"})
	if err != nil {
		t.Fatal(err)
	}
	tx.StageAppend("bank.ledger.checking", batchOf(t, [2]float64{1, -5}))
	tx.StageAppend("bank.ledger.savings", batchOf(t, [2]float64{1, +5}))

	// An independent writer advances savings before our commit.
	if _, err := tables["bank.ledger.savings"].Append(batchOf(t, [2]float64{9, 1})); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("commit after conflict: %v", err)
	}
	// Nothing from the transaction is visible anywhere.
	if totalRows(t, tables["bank.ledger.checking"]) != 0 {
		t.Fatal("checking leaked staged rows")
	}
	if totalRows(t, tables["bank.ledger.savings"]) != 1 {
		t.Fatal("savings should only have the independent append")
	}
}

func TestConcurrentTransfersSerialize(t *testing.T) {
	c, admin, tables := setup(t)
	const workers, transfersEach = 4, 10
	var wg sync.WaitGroup
	var committed, conflicted int
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < transfersEach; i++ {
				for {
					tx, err := c.Begin(admin, []string{"bank.ledger.checking", "bank.ledger.savings"})
					if err != nil {
						t.Error(err)
						return
					}
					tx.StageAppend("bank.ledger.checking", batchOf(t, [2]float64{float64(w), -1}))
					tx.StageAppend("bank.ledger.savings", batchOf(t, [2]float64{float64(w), +1}))
					err = tx.Commit()
					if err == nil {
						mu.Lock()
						committed++
						mu.Unlock()
						break
					}
					if errors.Is(err, ErrConflict) {
						mu.Lock()
						conflicted++
						mu.Unlock()
						continue // retry
					}
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	want := int64(workers * transfersEach)
	// The invariant: both tables saw exactly the same number of committed
	// transfer halves — no partial transfers ever.
	if got := totalRows(t, tables["bank.ledger.checking"]); got != want {
		t.Fatalf("checking rows = %d, want %d", got, want)
	}
	if got := totalRows(t, tables["bank.ledger.savings"]); got != want {
		t.Fatalf("savings rows = %d, want %d", got, want)
	}
	if committed != workers*transfersEach {
		t.Fatalf("committed = %d", committed)
	}
}

func TestReadYourSnapshotAcrossTables(t *testing.T) {
	c, admin, tables := setup(t)
	tables["bank.ledger.checking"].Append(batchOf(t, [2]float64{1, 10}))
	tx, err := c.Begin(admin, []string{"bank.ledger.checking", "bank.ledger.savings"})
	if err != nil {
		t.Fatal(err)
	}
	// Reads inside the txn see the pinned snapshot even after outside writes.
	tables["bank.ledger.checking"].Append(batchOf(t, [2]float64{2, 20}))
	res, err := tx.Scan("bank.ledger.checking", nil, nil)
	if err != nil || res.Batch.NumRows != 1 {
		t.Fatalf("txn scan rows = %d, %v", res.Batch.NumRows, err)
	}
	tx.Abort()
	if state, _, err := c.Record("ms1", tx.ID); err != nil || state != "ABORTED" {
		t.Fatalf("abort record = %s, %v", state, err)
	}
}

func TestBeginChecksPrivileges(t *testing.T) {
	c, _, _ := setup(t)
	mallory := catalog.Ctx{Principal: "mallory", Metastore: "ms1"}
	if _, err := c.Begin(mallory, []string{"bank.ledger.checking"}); !errors.Is(err, catalog.ErrPermissionDenied) {
		t.Fatalf("unauthorized begin: %v", err)
	}
	admin := catalog.Ctx{Principal: "admin", Metastore: "ms1"}
	if _, err := c.Begin(admin, nil); !errors.Is(err, catalog.ErrInvalidArgument) {
		t.Fatalf("empty begin: %v", err)
	}
	if _, err := c.Begin(admin, []string{"bank.ledger.nope"}); !errors.Is(err, catalog.ErrNotFound) {
		t.Fatalf("missing table: %v", err)
	}
}

func TestAuditLogStatementInSameTxn(t *testing.T) {
	// Multi-statement: a transfer plus an audit row in a third table, all
	// atomic.
	c, admin, tables := setup(t)
	tx, err := c.Begin(admin, []string{"bank.ledger.checking", "bank.ledger.savings", "bank.ledger.auditlog"})
	if err != nil {
		t.Fatal(err)
	}
	tx.StageAppend("bank.ledger.checking", batchOf(t, [2]float64{7, -42}))
	tx.StageAppend("bank.ledger.savings", batchOf(t, [2]float64{7, 42}))
	tx.StageAppend("bank.ledger.auditlog", batchOf(t, [2]float64{7, 0}))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for name, dt := range tables {
		if totalRows(t, dt) != 1 {
			t.Fatalf("%s rows != 1", name)
		}
	}
}

func TestCommitEventPublished(t *testing.T) {
	c, admin, _ := setup(t)
	sub := c.Service.Bus().Subscribe()
	defer sub.Cancel()
	tx, _ := c.Begin(admin, []string{"bank.ledger.checking"})
	tx.StageAppend("bank.ledger.checking", batchOf(t, [2]float64{1, 1}))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	timeout := time.After(2 * time.Second)
	for {
		select {
		case e := <-sub.C:
			if string(e.Op) == "COMMIT" && e.FullName == "bank.ledger.checking" {
				return
			}
		case <-timeout:
			t.Fatal("no COMMIT event observed")
		}
	}
}
