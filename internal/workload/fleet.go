package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file models the external-client diversity of Figure 9 and the
// growth curves of Figures 7 and 8(b)/8(c).

// ClientFleetSpec parameterizes the Figure 9 simulation.
type ClientFleetSpec struct {
	Seed int64
	// ClientTypes is the number of distinct external client types
	// (the paper reports 334 for UC vs 95 for HMS).
	ClientTypes int
	// OpTypes is the number of distinct operation types exposed
	// (90 for UC vs 30 for HMS).
	OpTypes int
	// Events is the number of (client, op) invocations to sample.
	Events int
	// ZipfS skews both dimensions (real fleets are heavy-tailed).
	ZipfS float64
}

// FleetCell is one bubble of Figure 9: a (client type, op type) pair with
// its invocation count.
type FleetCell struct {
	Client string
	Op     string
	Count  int
}

// FleetMatrix is the Figure 9 dataset for one catalog system.
type FleetMatrix struct {
	System        string
	Cells         []FleetCell
	ClientTypes   int
	OpTypes       int
	DistinctPairs int
}

// ucOpNames generates stable operation names; the first 30 mirror the
// HMS-compatible surface, the rest are UC-only operations (grants, tags,
// credentials, models, shares, lineage, search, ...).
func opNames(n int) []string {
	base := []string{
		"GetTable", "GetDatabase", "GetAllDatabases", "GetTables", "CreateTable",
		"DropTable", "AlterTable", "CreateDatabase", "DropDatabase", "GetPartitions",
		"GetSchema", "ListSchemas", "GetCatalog", "ListCatalogs", "CreateSchema",
		"DropSchema", "GetTableStats", "UpdateTableStats", "GetFunctions", "CreateFunction",
		"DropFunction", "GetViews", "CreateView", "DropView", "RenameTable",
		"GetColumns", "CheckTableExists", "GetTableTypes", "GetPrimaryKeys", "GetForeignKeys",
	}
	ucOnly := []string{
		"Grant", "Revoke", "GetEffectivePermissions", "SetTag", "UnsetTag",
		"GetTemporaryTableCredentials", "GetTemporaryPathCredentials", "GetTemporaryVolumeCredentials",
		"CreateVolume", "ListVolumes", "ReadVolume", "CreateRegisteredModel", "CreateModelVersion",
		"ListModelVersions", "FinalizeModelVersion", "GetModelVersionDownloadURI", "SetModelAlias",
		"CreateShare", "UpdateShare", "ListShares", "CreateRecipient", "RotateRecipientToken",
		"QuerySharedTable", "ListSharedTables", "CreateConnection", "ListConnections",
		"CreateExternalLocation", "ListExternalLocations", "CreateStorageCredential",
		"ValidateStorageCredential", "SubmitLineage", "GetLineage", "SearchAssets",
		"QueryAssets", "GetAuditEvents", "CreateABACRule", "ListABACRules", "DeleteABACRule",
		"ResolveBatch", "GetMetastoreSummary", "AssignWorkspace", "UnassignWorkspace",
		"CreateCleanRoom", "ListCleanRooms", "GetInformationSchema", "RefreshForeignTable",
		"CreateMonitor", "GetMonitor", "EnablePredictiveOptimization", "GetCommitCoordinator",
		"CommitMultiTable", "GetTableSnapshot", "RestoreTable", "CloneTable",
		"SetRowFilter", "SetColumnMask", "GetVendedIcebergMetadata", "SyncUniform",
		"GetOnlineTable", "CreateServingEndpoint",
	}
	all := append(append([]string{}, base...), ucOnly...)
	for len(all) < n {
		all = append(all, fmt.Sprintf("ExtensionOp%03d", len(all)))
	}
	return all[:n]
}

func clientNames(n int, r *rand.Rand) []string {
	families := []string{
		"spark", "trino", "presto", "flink", "duck", "polars", "pandas", "ray",
		"powerbi", "tableau", "looker", "qlik", "metabase", "superset", "mode",
		"dbt", "airflow", "dagster", "prefect", "fivetran", "airbyte", "datahub",
		"collibra", "alation", "atlan", "immuta", "privacera", "greatexpectations",
		"jupyter", "rstudio", "vscode", "terraform", "pulumi", "cli", "sdk-python",
		"sdk-go", "sdk-java", "sdk-rust", "rest-curl", "browser-ui",
	}
	versionsPerFamily := n/len(families) + 1
	var out []string
	for _, f := range families {
		for v := 0; v < versionsPerFamily; v++ {
			out = append(out, fmt.Sprintf("%s/%d.%d", f, 1+v, r.Intn(10)))
		}
	}
	sort.Strings(out)
	return out[:n]
}

// GenerateFleet samples the (client, op) activity matrix.
func GenerateFleet(system string, spec ClientFleetSpec) *FleetMatrix {
	if spec.Events == 0 {
		spec.Events = 50000
	}
	if spec.ZipfS == 0 {
		spec.ZipfS = 1.3
	}
	r := rand.New(rand.NewSource(spec.Seed))
	clients := clientNames(spec.ClientTypes, r)
	ops := opNames(spec.OpTypes)
	zc := rand.NewZipf(r, spec.ZipfS, 1, uint64(len(clients)-1))
	zo := rand.NewZipf(r, spec.ZipfS, 1, uint64(len(ops)-1))

	counts := map[[2]int]int{}
	for i := 0; i < spec.Events; i++ {
		c := int(zc.Uint64())
		o := int(zo.Uint64())
		// Shuffle op index per client so different clients favor
		// different operations, as in reality.
		o = (o + c*7) % len(ops)
		counts[[2]int{c, o}]++
	}
	m := &FleetMatrix{System: system, ClientTypes: spec.ClientTypes, OpTypes: spec.OpTypes}
	for k, n := range counts {
		m.Cells = append(m.Cells, FleetCell{Client: clients[k[0]], Op: ops[k[1]], Count: n})
	}
	sort.Slice(m.Cells, func(i, j int) bool { return m.Cells[i].Count > m.Cells[j].Count })
	m.DistinctPairs = len(m.Cells)
	return m
}

// GrowthSpec parameterizes cumulative-creation curves (Figures 7, 8(b),
// 8(c)): series that compound over time, with volumes accelerating fastest.
type GrowthSpec struct {
	Seed int64
	// Periods is the number of time steps (e.g. months).
	Periods int
	// Series maps a series name to (initial creations per period, growth
	// rate per period).
	Series map[string]GrowthParams
}

// GrowthParams shapes one series.
type GrowthParams struct {
	Initial float64
	Rate    float64 // per-period multiplicative growth, e.g. 1.15
}

// GrowthPoint is one (period, cumulative count) sample.
type GrowthPoint struct {
	Period     int
	Created    int
	Cumulative int
}

// GenerateGrowth produces cumulative-creation curves with noise.
func GenerateGrowth(spec GrowthSpec) map[string][]GrowthPoint {
	r := rand.New(rand.NewSource(spec.Seed))
	out := map[string][]GrowthPoint{}
	for name, p := range spec.Series {
		rate := p.Initial
		cum := 0
		var pts []GrowthPoint
		for t := 0; t < spec.Periods; t++ {
			noise := 0.85 + r.Float64()*0.3
			created := int(rate * noise)
			cum += created
			pts = append(pts, GrowthPoint{Period: t, Created: created, Cumulative: cum})
			rate *= p.Rate
		}
		out[name] = pts
	}
	return out
}

// DefaultGrowthSeries matches the paper's qualitative curves: volumes
// accelerate fastest (Figure 7), managed tables dominate but all types grow
// (Figure 8(b)), and the top-5 foreign types all rise (Figure 8(c)).
func DefaultGrowthSeries() map[string]GrowthParams {
	return map[string]GrowthParams{
		"volumes":               {Initial: 40, Rate: 1.22},
		"tables_managed":        {Initial: 900, Rate: 1.08},
		"tables_external":       {Initial: 300, Rate: 1.07},
		"tables_foreign":        {Initial: 120, Rate: 1.12},
		"views":                 {Initial: 220, Rate: 1.08},
		"tables_shallow_clone":  {Initial: 25, Rate: 1.10},
		"foreign_snowstore":     {Initial: 40, Rate: 1.13},
		"foreign_bigwarehouse":  {Initial: 30, Rate: 1.12},
		"foreign_redshelf":      {Initial: 20, Rate: 1.11},
		"foreign_hivemetastore": {Initial: 18, Rate: 1.09},
		"foreign_postgres":      {Initial: 12, Rate: 1.10},
	}
}
