// Package workload generates synthetic catalog populations, access traces,
// TPC-H/TPC-DS schemas, and client fleets used to regenerate the paper's
// evaluation (Section 6). Real production telemetry is proprietary, so the
// generators are calibrated to the statistics the paper reports — heavy-
// tailed assets per catalog, the §6.1 asset mix, the 98.2% read ratio, the
// ~7% path-access share — and every generated operation is executed against
// the live Unity Catalog code paths, so measured distributions come from
// actual system behaviour.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/erm"
)

// PopulationSpec parameterizes a synthetic metastore population.
type PopulationSpec struct {
	Seed int64
	// Catalogs is the number of catalogs to create (default 12).
	Catalogs int
	// MeanSchemasPerCatalog controls schema counts (default 4).
	MeanSchemasPerCatalog int
	// TableScale scales the heavy-tailed tables-per-catalog distribution
	// (default 1.0). The paper's mode is ~30 tables per catalog with a tail
	// to 500K; we keep the mode and a (scaled) tail.
	TableScale float64
	// WithData creates Delta logs for managed tables (slower; only needed
	// by experiments that scan data).
	WithData bool
}

func (s *PopulationSpec) defaults() {
	if s.Catalogs == 0 {
		s.Catalogs = 12
	}
	if s.MeanSchemasPerCatalog == 0 {
		s.MeanSchemasPerCatalog = 4
	}
	if s.TableScale == 0 {
		s.TableScale = 1.0
	}
}

// SchemaKind is the composition class of a schema (Figure 6(a)).
type SchemaKind string

// Schema composition classes.
const (
	SchemaTablesOnly  SchemaKind = "tables_only"
	SchemaVolumesOnly SchemaKind = "volumes_only"
	SchemaBoth        SchemaKind = "tables_and_volumes"
	SchemaOther       SchemaKind = "other" // includes models
)

// Asset is one generated asset reference.
type Asset struct {
	FullName string
	Type     erm.SecurableType
	// TableType/Format for tables.
	TableType catalog.TableType
	Format    catalog.DataFormat
	// Container marks catalogs and schemas.
	Container bool
	// StoragePath for storage-backed assets.
	StoragePath string
}

// Population is the manifest of everything generated.
type Population struct {
	Catalogs []string
	Schemas  []string
	Assets   []Asset
	// SchemaKinds maps schema full name to its composition class.
	SchemaKinds map[string]SchemaKind
}

// TableTypeMix is the Figure 6(b) distribution. Fractions sum to 1.
var TableTypeMix = []struct {
	Type catalog.TableType
	Frac float64
}{
	{catalog.TableManaged, 0.53},
	{catalog.TableExternal, 0.17},
	{catalog.TableForeign, 0.16},
	{"VIEW", 0.12}, // views are modelled as a table-kind slot in the mix
	{catalog.TableShallowClone, 0.02},
}

// FormatMix is the Figure 8(a) distribution over non-foreign tables.
var FormatMix = []struct {
	Format catalog.DataFormat
	Frac   float64
}{
	{catalog.FormatDelta, 0.78},
	{catalog.FormatParquet, 0.10},
	{catalog.FormatIceberg, 0.06},
	{catalog.FormatCSV, 0.04},
	{catalog.FormatJSON, 0.01},
	{catalog.FormatAvro, 0.01},
}

// ForeignSources lists foreign table source systems; the paper reports 26
// foreign table types with a dominant top five (three of them cloud
// warehouses). Fractions are the shares among foreign tables.
var ForeignSources = []struct {
	Source string
	Frac   float64
}{
	{"snowstore", 0.30}, {"bigwarehouse", 0.22}, {"redshelf", 0.15},
	{"hive_metastore", 0.12}, {"postgres", 0.08},
	// long tail of 21 more types sharing the rest
	{"mysql", 0.03}, {"sqlserver", 0.02}, {"oracle", 0.02}, {"teradata", 0.01},
	{"sap", 0.01}, {"mongo", 0.01}, {"dynamo", 0.005}, {"cassandra", 0.005},
	{"salesforce", 0.004}, {"netsuite", 0.004}, {"workday", 0.004},
	{"looker", 0.003}, {"glue", 0.003}, {"presto", 0.003}, {"druid", 0.002},
	{"pinot", 0.002}, {"clickhouse", 0.002}, {"duckpond", 0.001},
	{"sqlite", 0.001}, {"access", 0.001}, {"excel", 0.001},
}

// schemaKindMix is the Figure 6(a) distribution.
var schemaKindMix = []struct {
	Kind SchemaKind
	Frac float64
}{
	{SchemaTablesOnly, 0.89},
	{SchemaVolumesOnly, 0.03},
	{SchemaBoth, 0.03},
	{SchemaOther, 0.05},
}

func pickSchemaKind(r *rand.Rand) SchemaKind {
	x := r.Float64()
	acc := 0.0
	for _, e := range schemaKindMix {
		acc += e.Frac
		if x < acc {
			return e.Kind
		}
	}
	return schemaKindMix[len(schemaKindMix)-1].Kind
}

// pickTableType samples the Figure 6(b) mix.
func pickTableType(r *rand.Rand) catalog.TableType {
	x := r.Float64()
	acc := 0.0
	for _, e := range TableTypeMix {
		acc += e.Frac
		if x < acc {
			return e.Type
		}
	}
	return catalog.TableManaged
}

func pickFormat(r *rand.Rand) catalog.DataFormat {
	x := r.Float64()
	acc := 0.0
	for _, e := range FormatMix {
		acc += e.Frac
		if x < acc {
			return e.Format
		}
	}
	return catalog.FormatDelta
}

// PickForeignSource samples the foreign-source mix.
func PickForeignSource(r *rand.Rand) string {
	x := r.Float64()
	acc := 0.0
	for _, e := range ForeignSources {
		acc += e.Frac
		if x < acc {
			return e.Source
		}
	}
	return ForeignSources[len(ForeignSources)-1].Source
}

// logNormalCount samples a heavy-tailed count with the given mode.
func logNormalCount(r *rand.Rand, mode float64, sigma float64) int {
	// For LogNormal(mu, sigma), mode = exp(mu - sigma^2).
	mu := math.Log(mode) + sigma*sigma
	n := int(math.Exp(r.NormFloat64()*sigma + mu))
	if n < 1 {
		n = 1
	}
	return n
}

// Generate builds a population inside the metastore by driving the real
// catalog APIs as the given admin principal.
func Generate(svc *catalog.Service, admin catalog.Ctx, spec PopulationSpec) (*Population, error) {
	spec.defaults()
	r := rand.New(rand.NewSource(spec.Seed))
	pop := &Population{SchemaKinds: map[string]SchemaKind{}}

	columns := []catalog.ColumnInfo{
		{Name: "id", Type: "BIGINT", Position: 0},
		{Name: "value", Type: "DOUBLE", Position: 1},
		{Name: "label", Type: "STRING", Position: 2},
	}

	for ci := 0; ci < spec.Catalogs; ci++ {
		catName := fmt.Sprintf("cat%03d", ci)
		if _, err := svc.CreateCatalog(admin, catName, ""); err != nil {
			return nil, err
		}
		pop.Catalogs = append(pop.Catalogs, catName)
		pop.Assets = append(pop.Assets, Asset{FullName: catName, Type: erm.TypeCatalog, Container: true})

		// Heavy-tailed table budget for the catalog, split over schemas.
		tableBudget := int(float64(logNormalCount(r, 30, 1.1)) * spec.TableScale)
		nSchemas := 1 + r.Intn(spec.MeanSchemasPerCatalog*2-1)
		for si := 0; si < nSchemas; si++ {
			schemaName := fmt.Sprintf("sch%02d", si)
			full := catName + "." + schemaName
			if _, err := svc.CreateSchema(admin, catName, schemaName, ""); err != nil {
				return nil, err
			}
			pop.Schemas = append(pop.Schemas, full)
			pop.Assets = append(pop.Assets, Asset{FullName: full, Type: erm.TypeSchema, Container: true})

			kind := pickSchemaKind(r)
			pop.SchemaKinds[full] = kind

			nTables := tableBudget / nSchemas
			if nTables < 1 {
				nTables = 1
			}
			switch kind {
			case SchemaTablesOnly:
				if err := genTables(svc, admin, r, pop, full, nTables, columns); err != nil {
					return nil, err
				}
			case SchemaVolumesOnly:
				if err := genVolumes(svc, admin, r, pop, full, 1+r.Intn(5)); err != nil {
					return nil, err
				}
			case SchemaBoth:
				if err := genTables(svc, admin, r, pop, full, nTables, columns); err != nil {
					return nil, err
				}
				if err := genVolumes(svc, admin, r, pop, full, 1+r.Intn(5)); err != nil {
					return nil, err
				}
			case SchemaOther:
				// Mixed: models, functions, and some tables/volumes.
				if err := genModels(svc, admin, r, pop, full, 1+r.Intn(3)); err != nil {
					return nil, err
				}
				if r.Float64() < 0.6 {
					if err := genTables(svc, admin, r, pop, full, nTables/2+1, columns); err != nil {
						return nil, err
					}
				}
				if r.Float64() < 0.4 {
					if err := genVolumes(svc, admin, r, pop, full, 1+r.Intn(3)); err != nil {
						return nil, err
					}
				}
				if _, err := svc.CreateFunction(admin, full, fmt.Sprintf("fn%02d", r.Intn(100)), catalog.FunctionSpec{Language: "SQL", Body: "1"}); err == nil {
					pop.Assets = append(pop.Assets, Asset{FullName: full + fmt.Sprintf(".fn%02d", r.Intn(100)), Type: erm.TypeFunction})
				}
			}
		}
	}
	return pop, nil
}

func genTables(svc *catalog.Service, admin catalog.Ctx, r *rand.Rand, pop *Population, schemaFull string, n int, columns []catalog.ColumnInfo) error {
	var lastTable string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("t%04d", i)
		tt := pickTableType(r)
		switch tt {
		case "VIEW":
			if lastTable == "" {
				tt = catalog.TableManaged
			} else {
				if _, err := svc.CreateView(admin, schemaFull, name, catalog.ViewSpec{
					Definition:   "SELECT id, value, label FROM " + lastTable,
					Dependencies: []string{lastTable},
				}); err != nil {
					return err
				}
				pop.Assets = append(pop.Assets, Asset{FullName: schemaFull + "." + name, Type: erm.TypeView})
				continue
			}
		}
		spec := catalog.TableSpec{TableType: tt, Format: pickFormat(r), Columns: columns}
		storagePath := ""
		switch tt {
		case catalog.TableExternal:
			storagePath = fmt.Sprintf("s3://external-%s/%s/%s", pop.Catalogs[len(pop.Catalogs)-1], schemaFull, name)
		case catalog.TableForeign:
			spec.Format = catalog.FormatParquet
			spec.ForeignSourceType = PickForeignSource(r)
			spec.ForeignConnection = spec.ForeignSourceType + "_conn"
			storagePath = fmt.Sprintf("s3://foreign-%s/%s/%s", spec.ForeignSourceType, schemaFull, name)
		case catalog.TableShallowClone:
			if lastTable == "" {
				spec.TableType = catalog.TableManaged
			}
		}
		e, err := svc.CreateTable(admin, schemaFull, name, spec, storagePath)
		if err != nil {
			return err
		}
		full := schemaFull + "." + name
		lastTable = full
		pop.Assets = append(pop.Assets, Asset{
			FullName: full, Type: erm.TypeTable, TableType: spec.TableType,
			Format: spec.Format, StoragePath: e.StoragePath,
		})
	}
	return nil
}

func genVolumes(svc *catalog.Service, admin catalog.Ctx, r *rand.Rand, pop *Population, schemaFull string, n int) error {
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("vol%02d", i)
		e, err := svc.CreateVolume(admin, schemaFull, name, "")
		if err != nil {
			return err
		}
		pop.Assets = append(pop.Assets, Asset{FullName: schemaFull + "." + name, Type: erm.TypeVolume, StoragePath: e.StoragePath})
	}
	return nil
}

func genModels(svc *catalog.Service, admin catalog.Ctx, r *rand.Rand, pop *Population, schemaFull string, n int) error {
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("model%02d", i)
		e, err := svc.CreateAsset(admin, catalog.CreateRequest{
			Type: erm.TypeRegisteredModel, Name: name, ParentFull: schemaFull,
			Spec: &catalog.ModelSpec{NextVersion: 1},
		})
		if err != nil {
			return err
		}
		pop.Assets = append(pop.Assets, Asset{FullName: schemaFull + "." + name, Type: erm.TypeRegisteredModel, StoragePath: e.StoragePath})
	}
	return nil
}

// Tables returns the table assets of the population.
func (p *Population) Tables() []Asset {
	var out []Asset
	for _, a := range p.Assets {
		if a.Type == erm.TypeTable {
			out = append(out, a)
		}
	}
	return out
}

// CountByType tallies generated assets per securable type.
func (p *Population) CountByType() map[erm.SecurableType]int {
	out := map[erm.SecurableType]int{}
	for _, a := range p.Assets {
		out[a.Type]++
	}
	return out
}
