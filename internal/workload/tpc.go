package workload

import (
	"fmt"
	"math/rand"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/delta"
)

// This file provides scaled-down TPC-H and TPC-DS workloads for the
// Figure 10(a) and 10(c) experiments: the real schemas (tables + columns
// relevant to the metadata path), data generators for Delta tables, and the
// per-query table footprints that drive metadata resolution.

// TPCTable describes one benchmark table.
type TPCTable struct {
	Name    string
	Columns []catalog.ColumnInfo
	// Rows at scale factor 1 of this reproduction (scaled down from spec).
	Rows int
}

// TPCHTables is the eight-table TPC-H schema.
var TPCHTables = []TPCTable{
	{Name: "region", Rows: 5, Columns: tpcCols("r_regionkey:BIGINT", "r_name:STRING", "r_comment:STRING")},
	{Name: "nation", Rows: 25, Columns: tpcCols("n_nationkey:BIGINT", "n_name:STRING", "n_regionkey:BIGINT", "n_comment:STRING")},
	{Name: "supplier", Rows: 100, Columns: tpcCols("s_suppkey:BIGINT", "s_name:STRING", "s_nationkey:BIGINT", "s_acctbal:DOUBLE")},
	{Name: "customer", Rows: 1500, Columns: tpcCols("c_custkey:BIGINT", "c_name:STRING", "c_nationkey:BIGINT", "c_acctbal:DOUBLE", "c_mktsegment:STRING")},
	{Name: "part", Rows: 2000, Columns: tpcCols("p_partkey:BIGINT", "p_name:STRING", "p_type:STRING", "p_retailprice:DOUBLE")},
	{Name: "partsupp", Rows: 8000, Columns: tpcCols("ps_partkey:BIGINT", "ps_suppkey:BIGINT", "ps_availqty:BIGINT", "ps_supplycost:DOUBLE")},
	{Name: "orders", Rows: 15000, Columns: tpcCols("o_orderkey:BIGINT", "o_custkey:BIGINT", "o_totalprice:DOUBLE", "o_orderdate:BIGINT", "o_orderpriority:STRING")},
	{Name: "lineitem", Rows: 60000, Columns: tpcCols("l_orderkey:BIGINT", "l_partkey:BIGINT", "l_suppkey:BIGINT", "l_quantity:DOUBLE", "l_extendedprice:DOUBLE", "l_discount:DOUBLE", "l_shipdate:BIGINT", "l_returnflag:STRING")},
}

// TPCHQueryFootprints lists, per TPC-H query (1-22), the tables the query
// references — exactly what the catalog's metadata path must resolve.
var TPCHQueryFootprints = [][]string{
	{"lineitem"}, // Q1
	{"part", "supplier", "partsupp", "nation", "region"},               // Q2
	{"customer", "orders", "lineitem"},                                 // Q3
	{"orders", "lineitem"},                                             // Q4
	{"customer", "orders", "lineitem", "supplier", "nation", "region"}, // Q5
	{"lineitem"}, // Q6
	{"supplier", "lineitem", "orders", "customer", "nation"},                   // Q7
	{"part", "supplier", "lineitem", "orders", "customer", "nation", "region"}, // Q8
	{"part", "supplier", "lineitem", "partsupp", "orders", "nation"},           // Q9
	{"customer", "orders", "lineitem", "nation"},                               // Q10
	{"partsupp", "supplier", "nation"},                                         // Q11
	{"orders", "lineitem"},                                                     // Q12
	{"customer", "orders"},                                                     // Q13
	{"lineitem", "part"},                                                       // Q14
	{"supplier", "lineitem"},                                                   // Q15
	{"partsupp", "part", "supplier"},                                           // Q16
	{"lineitem", "part"},                                                       // Q17
	{"customer", "orders", "lineitem"},                                         // Q18
	{"lineitem", "part"},                                                       // Q19
	{"supplier", "nation", "partsupp", "part", "lineitem"},                     // Q20
	{"supplier", "lineitem", "orders", "nation"},                               // Q21
	{"customer", "orders"},                                                     // Q22
}

// TPCDSTables is a representative TPC-DS subset (the store sales channel
// plus shared dimensions), enough to exercise wide metadata footprints.
var TPCDSTables = []TPCTable{
	{Name: "date_dim", Rows: 3650, Columns: tpcCols("d_date_sk:BIGINT", "d_year:BIGINT", "d_moy:BIGINT", "d_dom:BIGINT")},
	{Name: "time_dim", Rows: 1000, Columns: tpcCols("t_time_sk:BIGINT", "t_hour:BIGINT", "t_minute:BIGINT")},
	{Name: "item", Rows: 2000, Columns: tpcCols("i_item_sk:BIGINT", "i_brand:STRING", "i_category:STRING", "i_current_price:DOUBLE")},
	{Name: "customer", Rows: 5000, Columns: tpcCols("c_customer_sk:BIGINT", "c_first_name:STRING", "c_last_name:STRING", "c_birth_year:BIGINT")},
	{Name: "customer_address", Rows: 2500, Columns: tpcCols("ca_address_sk:BIGINT", "ca_state:STRING", "ca_zip:STRING")},
	{Name: "customer_demographics", Rows: 1000, Columns: tpcCols("cd_demo_sk:BIGINT", "cd_gender:STRING", "cd_education_status:STRING")},
	{Name: "household_demographics", Rows: 700, Columns: tpcCols("hd_demo_sk:BIGINT", "hd_income_band_sk:BIGINT")},
	{Name: "store", Rows: 12, Columns: tpcCols("s_store_sk:BIGINT", "s_store_name:STRING", "s_state:STRING")},
	{Name: "promotion", Rows: 30, Columns: tpcCols("p_promo_sk:BIGINT", "p_channel_email:STRING")},
	{Name: "store_sales", Rows: 50000, Columns: tpcCols("ss_sold_date_sk:BIGINT", "ss_item_sk:BIGINT", "ss_customer_sk:BIGINT", "ss_store_sk:BIGINT", "ss_quantity:BIGINT", "ss_sales_price:DOUBLE", "ss_net_profit:DOUBLE")},
	{Name: "store_returns", Rows: 5000, Columns: tpcCols("sr_returned_date_sk:BIGINT", "sr_item_sk:BIGINT", "sr_customer_sk:BIGINT", "sr_return_amt:DOUBLE")},
	{Name: "inventory", Rows: 20000, Columns: tpcCols("inv_date_sk:BIGINT", "inv_item_sk:BIGINT", "inv_quantity_on_hand:BIGINT")},
	{Name: "warehouse", Rows: 5, Columns: tpcCols("w_warehouse_sk:BIGINT", "w_warehouse_name:STRING")},
	{Name: "web_sales", Rows: 25000, Columns: tpcCols("ws_sold_date_sk:BIGINT", "ws_item_sk:BIGINT", "ws_bill_customer_sk:BIGINT", "ws_sales_price:DOUBLE")},
	{Name: "catalog_sales", Rows: 30000, Columns: tpcCols("cs_sold_date_sk:BIGINT", "cs_item_sk:BIGINT", "cs_bill_customer_sk:BIGINT", "cs_sales_price:DOUBLE")},
}

// TPCDSQueryFootprints samples representative TPC-DS query footprints.
var TPCDSQueryFootprints = [][]string{
	{"store_sales", "date_dim", "item"},                                   // q3-like
	{"store_sales", "date_dim", "customer", "customer_address"},           // q6-like
	{"store_sales", "customer_demographics", "date_dim", "store", "item"}, // q7-like
	{"store_sales", "household_demographics", "time_dim", "store"},        // q88-like
	{"store_sales", "store_returns", "date_dim", "store", "customer"},     // q1-like
	{"inventory", "date_dim", "item", "warehouse"},                        // q21-like
	{"web_sales", "date_dim", "item"},                                     // q12-like
	{"catalog_sales", "date_dim", "customer", "customer_address"},         // q15-like
	{"store_sales", "web_sales", "catalog_sales", "date_dim", "item"},     // cross-channel
	{"store_sales", "date_dim", "item", "promotion", "customer"},          // promo
	{"customer", "customer_address", "customer_demographics"},             // dims only
	{"store_sales", "date_dim"},                                           // narrow
}

func tpcCols(defs ...string) []catalog.ColumnInfo {
	out := make([]catalog.ColumnInfo, len(defs))
	for i, d := range defs {
		name, typ := d, "STRING"
		for j := 0; j < len(d); j++ {
			if d[j] == ':' {
				name, typ = d[:j], d[j+1:]
				break
			}
		}
		out[i] = catalog.ColumnInfo{Name: name, Type: typ, Nullable: true, Position: i}
	}
	return out
}

func deltaType(t string) delta.ColType {
	switch t {
	case "BIGINT":
		return delta.TypeInt64
	case "DOUBLE":
		return delta.TypeFloat64
	default:
		return delta.TypeString
	}
}

// DeltaSchema converts a TPC table to a Delta schema.
func (t TPCTable) DeltaSchema() delta.Schema {
	var s delta.Schema
	for _, c := range t.Columns {
		s.Fields = append(s.Fields, delta.SchemaField{Name: c.Name, Type: deltaType(c.Type), Nullable: true})
	}
	return s
}

// GenerateRows fills a batch with rows*scale synthetic rows.
func (t TPCTable) GenerateRows(seed int64, scale float64) *delta.Batch {
	r := rand.New(rand.NewSource(seed))
	schema := t.DeltaSchema()
	b := delta.NewBatch(schema)
	n := int(float64(t.Rows) * scale)
	if n < 1 {
		n = 1
	}
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for i := 0; i < n; i++ {
		row := make([]any, len(schema.Fields))
		for j, f := range schema.Fields {
			switch f.Type {
			case delta.TypeInt64:
				if j == 0 {
					row[j] = int64(i) // primary-key-ish
				} else {
					row[j] = int64(r.Intn(10000))
				}
			case delta.TypeFloat64:
				row[j] = r.Float64() * 1000
			default:
				row[j] = words[r.Intn(len(words))]
			}
		}
		b.AppendRow(row...)
	}
	return b
}

// SetupTPC registers the benchmark tables in "catalog.schema" and, when
// withData is true, creates Delta tables with generated rows at the scale.
func SetupTPC(svc *catalog.Service, admin catalog.Ctx, catalogName, schemaName string, tables []TPCTable, scale float64, withData bool, seed int64) error {
	if _, err := svc.CreateCatalog(admin, catalogName, "TPC benchmark data"); err != nil {
		return err
	}
	if _, err := svc.CreateSchema(admin, catalogName, schemaName, ""); err != nil {
		return err
	}
	schemaFull := catalogName + "." + schemaName
	for i, t := range tables {
		e, err := svc.CreateTable(admin, schemaFull, t.Name, catalog.TableSpec{Columns: t.Columns}, "")
		if err != nil {
			return err
		}
		if withData {
			dt, err := delta.Create(delta.ServiceBlobs{Store: svc.Cloud()}, e.StoragePath, t.Name, t.DeltaSchema(), nil)
			if err != nil {
				return err
			}
			if _, err := dt.Append(t.GenerateRows(seed+int64(i), scale)); err != nil {
				return err
			}
		}
	}
	return nil
}

// QueryNames expands footprints into full names under "catalog.schema".
func QueryNames(catalogName, schemaName string, footprint []string) []string {
	out := make([]string, len(footprint))
	for i, t := range footprint {
		out[i] = fmt.Sprintf("%s.%s.%s", catalogName, schemaName, t)
	}
	return out
}
