package workload

import (
	"math/rand"
	"time"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/cloudsim"
	"unitycatalog/internal/erm"
)

// OpKind classifies trace operations. The mix is calibrated to §6.1:
// ~98.2% of production UC traffic is reads.
type OpKind string

// Trace operation kinds.
const (
	OpGetAsset   OpKind = "GetAsset"         // metadata read by name
	OpResolve    OpKind = "Resolve"          // batched query-path resolution
	OpList       OpKind = "ListAssets"       // container listing
	OpCredByName OpKind = "CredentialByName" // temp credential by asset name
	OpCredByPath OpKind = "CredentialByPath" // temp credential by raw path
	OpUpdateMeta OpKind = "UpdateAsset"      // metadata write
	OpGrantOp    OpKind = "Grant"            // permission write
	OpSearchOp   OpKind = "Search"           // discovery read (not replayed here)
)

// TraceOp is one operation against one asset at a virtual time.
type TraceOp struct {
	Kind  OpKind
	Asset Asset
	// At is the virtual time offset of the operation.
	At time.Duration
}

// TraceSpec parameterizes trace generation.
type TraceSpec struct {
	Seed int64
	// Ops is the trace length (default 20000).
	Ops int
	// ReadFraction is the share of read operations (default 0.982).
	ReadFraction float64
	// PathAccessFraction is the share of *table accesses* that go through a
	// raw storage path rather than the catalog name; the paper reports ~7%
	// of tables see path access (default 0.07).
	PathAccessFraction float64
	// ZipfS shapes asset popularity (default 1.2; higher = more skew).
	ZipfS float64
	// MeanGap is the mean virtual time between consecutive ops
	// (default 5ms), driving the Figure 5 inter-arrival distribution.
	MeanGap time.Duration
	// ContainerBias is how much more often containers are touched than leaf
	// assets, reflecting that every query touches its catalog and schema
	// (default: containers are accessed alongside each leaf access).
	ContainerBias float64
}

func (s *TraceSpec) defaults() {
	if s.Ops == 0 {
		s.Ops = 20000
	}
	if s.ReadFraction == 0 {
		s.ReadFraction = 0.982
	}
	if s.PathAccessFraction == 0 {
		s.PathAccessFraction = 0.07
	}
	if s.ZipfS == 0 {
		s.ZipfS = 1.2
	}
	if s.MeanGap == 0 {
		s.MeanGap = 5 * time.Millisecond
	}
	if s.ContainerBias == 0 {
		s.ContainerBias = 1.0
	}
}

// GenerateTrace builds an access trace over the population's assets with
// Zipf popularity and exponential op gaps, yielding the temporal locality
// the paper measures (containers re-accessed much sooner than leaf assets,
// because every leaf access implies its container chain).
func GenerateTrace(pop *Population, spec TraceSpec) []TraceOp {
	spec.defaults()
	r := rand.New(rand.NewSource(spec.Seed))

	var leaves []Asset
	for _, a := range pop.Assets {
		if !a.Container {
			leaves = append(leaves, a)
		}
	}
	if len(leaves) == 0 {
		return nil
	}
	zipf := rand.NewZipf(r, spec.ZipfS, 1, uint64(len(leaves)-1))

	// pathEligible marks the ~7% of tables that ever see path access.
	pathEligible := map[string]bool{}
	for _, a := range leaves {
		if a.Type == erm.TypeTable && a.StoragePath != "" && r.Float64() < spec.PathAccessFraction {
			pathEligible[a.FullName] = true
		}
	}

	containerOf := func(full string) (cat, sch string) {
		dot1 := -1
		for i := 0; i < len(full); i++ {
			if full[i] == '.' {
				if dot1 < 0 {
					dot1 = i
				} else {
					return full[:dot1], full[:i]
				}
			}
		}
		if dot1 >= 0 {
			return full[:dot1], full
		}
		return full, ""
	}

	var ops []TraceOp
	now := time.Duration(0)
	for len(ops) < spec.Ops {
		now += time.Duration(r.ExpFloat64() * float64(spec.MeanGap))
		leaf := leaves[zipf.Uint64()]

		// Every leaf access touches its container chain (metadata
		// resolution authorizes USE CATALOG / USE SCHEMA), producing the
		// container re-access pattern of Figure 5.
		if spec.ContainerBias > 0 {
			cat, sch := containerOf(leaf.FullName)
			ops = append(ops, TraceOp{Kind: OpGetAsset, Asset: Asset{FullName: cat, Type: erm.TypeCatalog, Container: true}, At: now})
			if sch != "" && sch != cat {
				ops = append(ops, TraceOp{Kind: OpGetAsset, Asset: Asset{FullName: sch, Type: erm.TypeSchema, Container: true}, At: now})
			}
		}

		if r.Float64() >= spec.ReadFraction {
			// Metadata write.
			if r.Float64() < 0.5 {
				ops = append(ops, TraceOp{Kind: OpUpdateMeta, Asset: leaf, At: now})
			} else {
				ops = append(ops, TraceOp{Kind: OpGrantOp, Asset: leaf, At: now})
			}
			continue
		}
		switch {
		case leaf.Type == erm.TypeTable && pathEligible[leaf.FullName] && r.Float64() < 0.5:
			ops = append(ops, TraceOp{Kind: OpCredByPath, Asset: leaf, At: now})
		case leaf.Type == erm.TypeTable && r.Float64() < 0.3:
			ops = append(ops, TraceOp{Kind: OpResolve, Asset: leaf, At: now})
		case r.Float64() < 0.1:
			ops = append(ops, TraceOp{Kind: OpList, Asset: leaf, At: now})
		default:
			ops = append(ops, TraceOp{Kind: OpGetAsset, Asset: leaf, At: now})
		}
	}
	return ops[:spec.Ops]
}

// ReplayStats aggregates what a replay observed.
type ReplayStats struct {
	Ops    int
	Errors int
	// InterArrivals maps asset type to the virtual-time gaps between
	// successive accesses of the same asset (Figure 5 input).
	InterArrivals map[erm.SecurableType][]time.Duration
	// AccessMethod tallies per-table access method (Figure 11 input):
	// name-only, path-only, or both.
	NameAccessed map[string]bool
	PathAccessed map[string]bool
}

// Replay executes the trace against the live service, collecting the
// statistics the figures need. Virtual time is used for inter-arrival
// bookkeeping; the replay itself runs as fast as the service allows.
func Replay(svc *catalog.Service, admin catalog.Ctx, ops []TraceOp) *ReplayStats {
	stats := &ReplayStats{
		InterArrivals: map[erm.SecurableType][]time.Duration{},
		NameAccessed:  map[string]bool{},
		PathAccessed:  map[string]bool{},
	}
	lastAccess := map[string]time.Duration{}
	grantToggle := false

	for _, op := range ops {
		stats.Ops++
		if prev, ok := lastAccess[op.Asset.FullName]; ok {
			stats.InterArrivals[op.Asset.Type] = append(stats.InterArrivals[op.Asset.Type], op.At-prev)
		}
		lastAccess[op.Asset.FullName] = op.At

		var err error
		switch op.Kind {
		case OpGetAsset:
			_, err = svc.GetAsset(admin, op.Asset.FullName)
			if op.Asset.Type == erm.TypeTable {
				stats.NameAccessed[op.Asset.FullName] = true
			}
		case OpResolve:
			_, err = svc.Resolve(admin, catalog.ResolveRequest{Names: []string{op.Asset.FullName}})
			stats.NameAccessed[op.Asset.FullName] = true
		case OpList:
			parent := op.Asset.FullName
			if i := lastDot(parent); i >= 0 {
				parent = parent[:i]
			}
			_, err = svc.ListAssets(admin, parent, "")
		case OpCredByName:
			_, err = svc.TempCredentialForAsset(admin, op.Asset.FullName, cloudsim.AccessRead)
			stats.NameAccessed[op.Asset.FullName] = true
		case OpCredByPath:
			_, err = svc.TempCredentialForPath(admin, op.Asset.StoragePath+"/part-0", cloudsim.AccessRead)
			stats.PathAccessed[op.Asset.FullName] = true
		case OpUpdateMeta:
			comment := "updated by trace"
			_, err = svc.UpdateAsset(admin, op.Asset.FullName, catalog.UpdateRequest{Comment: &comment})
		case OpGrantOp:
			if grantToggle {
				err = svc.Revoke(admin, op.Asset.FullName, "trace_user", "SELECT")
			} else {
				err = svc.Grant(admin, op.Asset.FullName, "trace_user", "SELECT")
			}
			grantToggle = !grantToggle
		}
		if err != nil {
			stats.Errors++
		}
	}
	return stats
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// AccessMethodCounts summarizes Figure 11: tables accessed by name only,
// path only, or both.
func (s *ReplayStats) AccessMethodCounts() (nameOnly, pathOnly, both int) {
	for t := range s.NameAccessed {
		if s.PathAccessed[t] {
			both++
		} else {
			nameOnly++
		}
	}
	for t := range s.PathAccessed {
		if !s.NameAccessed[t] {
			pathOnly++
		}
	}
	return nameOnly, pathOnly, both
}
