package workload

import (
	"math"
	"testing"

	"unitycatalog/internal/catalog"
	"unitycatalog/internal/erm"
	"unitycatalog/internal/store"
)

func newService(t *testing.T) (*catalog.Service, catalog.Ctx) {
	t.Helper()
	db, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	svc, err := catalog.New(catalog.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	svc.CreateMetastore("ms1", "main", "r", "admin", "s3://root/ms1")
	return svc, catalog.Ctx{Principal: "admin", Metastore: "ms1", TrustedEngine: true}
}

func TestGeneratePopulationShape(t *testing.T) {
	svc, admin := newService(t)
	pop, err := Generate(svc, admin, PopulationSpec{Seed: 7, Catalogs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(pop.Catalogs) != 10 || len(pop.Schemas) == 0 {
		t.Fatalf("catalogs=%d schemas=%d", len(pop.Catalogs), len(pop.Schemas))
	}
	counts := pop.CountByType()
	if counts[erm.TypeTable] == 0 {
		t.Fatal("no tables generated")
	}
	// Everything the manifest lists resolves through the real catalog API.
	for _, a := range pop.Assets[:min(50, len(pop.Assets))] {
		if _, err := svc.GetAsset(admin, a.FullName); err != nil {
			t.Fatalf("asset %s missing from catalog: %v", a.FullName, err)
		}
	}
	// Schema composition should be dominated by tables-only schemas.
	kinds := map[SchemaKind]int{}
	for _, k := range pop.SchemaKinds {
		kinds[k]++
	}
	if kinds[SchemaTablesOnly] <= kinds[SchemaVolumesOnly] {
		t.Fatalf("composition off: %v", kinds)
	}
	// Table type mix: managed should dominate.
	byType := map[catalog.TableType]int{}
	for _, a := range pop.Tables() {
		byType[a.TableType]++
	}
	if byType[catalog.TableManaged] < byType[catalog.TableForeign] {
		t.Fatalf("table mix off: %v", byType)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	svc1, admin1 := newService(t)
	svc2, admin2 := newService(t)
	p1, err := Generate(svc1, admin1, PopulationSpec{Seed: 42, Catalogs: 3})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Generate(svc2, admin2, PopulationSpec{Seed: 42, Catalogs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Assets) != len(p2.Assets) {
		t.Fatalf("non-deterministic: %d vs %d assets", len(p1.Assets), len(p2.Assets))
	}
	for i := range p1.Assets {
		if p1.Assets[i].FullName != p2.Assets[i].FullName {
			t.Fatalf("asset %d differs: %s vs %s", i, p1.Assets[i].FullName, p2.Assets[i].FullName)
		}
	}
}

func TestTraceGenerationAndReplay(t *testing.T) {
	svc, admin := newService(t)
	pop, err := Generate(svc, admin, PopulationSpec{Seed: 7, Catalogs: 4})
	if err != nil {
		t.Fatal(err)
	}
	ops := GenerateTrace(pop, TraceSpec{Seed: 9, Ops: 2000})
	if len(ops) != 2000 {
		t.Fatalf("ops = %d", len(ops))
	}
	// Virtual time is monotonic.
	for i := 1; i < len(ops); i++ {
		if ops[i].At < ops[i-1].At {
			t.Fatal("trace time not monotonic")
		}
	}
	stats := Replay(svc, admin, ops)
	if stats.Errors > stats.Ops/100 {
		t.Fatalf("too many replay errors: %d / %d", stats.Errors, stats.Ops)
	}
	// Temporal locality: container inter-arrivals should be shorter than
	// leaf-table inter-arrivals (Figure 5's shape).
	med := func(ds []int64) int64 {
		if len(ds) == 0 {
			return 0
		}
		cp := append([]int64(nil), ds...)
		for i := 1; i < len(cp); i++ {
			for j := i; j > 0 && cp[j-1] > cp[j]; j-- {
				cp[j-1], cp[j] = cp[j], cp[j-1]
			}
		}
		return cp[len(cp)/2]
	}
	toInt := func(k erm.SecurableType) []int64 {
		var out []int64
		for _, d := range stats.InterArrivals[k] {
			out = append(out, int64(d))
		}
		return out
	}
	catMed := med(toInt(erm.TypeCatalog))
	tblMed := med(toInt(erm.TypeTable))
	if catMed == 0 || tblMed == 0 {
		t.Fatalf("missing inter-arrivals: cat=%d tbl=%d", catMed, tblMed)
	}
	if catMed >= tblMed {
		t.Fatalf("containers should be re-accessed sooner: cat=%d tbl=%d", catMed, tblMed)
	}
	// Access methods: some tables should be path-accessed, most name-only.
	nameOnly, pathOnly, both := stats.AccessMethodCounts()
	if nameOnly == 0 || nameOnly < both+pathOnly {
		t.Fatalf("access mix off: name=%d path=%d both=%d", nameOnly, pathOnly, both)
	}
}

func TestReadFractionMatchesSpec(t *testing.T) {
	svc, admin := newService(t)
	pop, _ := Generate(svc, admin, PopulationSpec{Seed: 3, Catalogs: 3})
	ops := GenerateTrace(pop, TraceSpec{Seed: 5, Ops: 5000, ReadFraction: 0.982})
	writes := 0
	for _, op := range ops {
		if op.Kind == OpUpdateMeta || op.Kind == OpGrantOp {
			writes++
		}
	}
	frac := 1 - float64(writes)/float64(len(ops))
	if math.Abs(frac-0.982) > 0.02 {
		t.Fatalf("read fraction = %.4f, want ~0.982", frac)
	}
}

func TestTPCSetupAndFootprints(t *testing.T) {
	svc, admin := newService(t)
	if err := SetupTPC(svc, admin, "tpch", "sf1", TPCHTables, 0.01, true, 1); err != nil {
		t.Fatal(err)
	}
	// All 22 query footprints resolve through the catalog.
	for qi, fp := range TPCHQueryFootprints {
		names := QueryNames("tpch", "sf1", fp)
		if _, err := svc.Resolve(admin, catalog.ResolveRequest{Names: names, WithCredentials: true}); err != nil {
			t.Fatalf("Q%d resolve: %v", qi+1, err)
		}
	}
	if len(TPCHQueryFootprints) != 22 {
		t.Fatalf("TPC-H has %d footprints", len(TPCHQueryFootprints))
	}
	if len(TPCDSTables) < 10 || len(TPCDSQueryFootprints) < 10 {
		t.Fatalf("TPC-DS subset too small: %d tables, %d queries", len(TPCDSTables), len(TPCDSQueryFootprints))
	}
}

func TestFleetMatrix(t *testing.T) {
	uc := GenerateFleet("UC", ClientFleetSpec{Seed: 1, ClientTypes: 334, OpTypes: 90, Events: 20000})
	hms := GenerateFleet("HMS", ClientFleetSpec{Seed: 2, ClientTypes: 95, OpTypes: 30, Events: 20000})
	if uc.ClientTypes != 334 || hms.ClientTypes != 95 {
		t.Fatalf("client types: %d vs %d", uc.ClientTypes, hms.ClientTypes)
	}
	if uc.DistinctPairs <= hms.DistinctPairs {
		t.Fatalf("UC should show more diversity: %d vs %d", uc.DistinctPairs, hms.DistinctPairs)
	}
	// Heavy tail: the top cell should be much bigger than the median cell.
	if uc.Cells[0].Count < 10 {
		t.Fatalf("top cell = %d", uc.Cells[0].Count)
	}
}

func TestGrowthCurves(t *testing.T) {
	curves := GenerateGrowth(GrowthSpec{Seed: 1, Periods: 24, Series: DefaultGrowthSeries()})
	vols := curves["volumes"]
	if len(vols) != 24 {
		t.Fatalf("periods = %d", len(vols))
	}
	// Acceleration: second-half creations exceed first-half creations.
	firstHalf, secondHalf := 0, 0
	for i, p := range vols {
		if i < 12 {
			firstHalf += p.Created
		} else {
			secondHalf += p.Created
		}
	}
	if secondHalf <= firstHalf {
		t.Fatalf("volume growth not accelerating: %d then %d", firstHalf, secondHalf)
	}
	// Cumulative counts are monotone.
	for i := 1; i < len(vols); i++ {
		if vols[i].Cumulative < vols[i-1].Cumulative {
			t.Fatal("cumulative not monotone")
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
