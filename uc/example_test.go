package uc_test

import (
	"fmt"
	"log"

	"unitycatalog/uc"
)

// Example shows the end-to-end flow of the paper's Section 3.4: build a
// governed namespace, run SQL through a trusted engine with credential
// vending, and enforce default-deny governance.
func Example() {
	cat, err := uc.Open(uc.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer cat.Close()
	cat.CreateMetastore("ms1", "main", "us-east-1", "admin", "s3://acme/ms1")

	admin := cat.Session("admin", "ms1")
	admin.CreateCatalog("sales", "")
	admin.CreateSchema("sales", "raw", "")
	cols := []uc.ColumnInfo{{Name: "id", Type: "BIGINT"}, {Name: "region", Type: "STRING"}}
	tbl, _ := admin.CreateTable("sales.raw", "orders", uc.TableSpec{Columns: cols}, "")
	cat.BootstrapDeltaTable(tbl.StoragePath, cols)

	eng := cat.NewEngine("example-engine", true)
	ctx := uc.Ctx{Principal: "admin", Metastore: "ms1"}
	eng.Execute(ctx, "INSERT INTO sales.raw.orders VALUES (1, 'US'), (2, 'EU')")
	res, _ := eng.Execute(ctx, "SELECT COUNT(*) FROM sales.raw.orders")
	fmt.Println("rows:", res.Count)

	// Default deny for other principals until granted.
	if _, err := eng.Execute(uc.Ctx{Principal: "alice", Metastore: "ms1"}, "SELECT id FROM sales.raw.orders"); err != nil {
		fmt.Println("alice: denied")
	}
	admin.Grant("sales", "alice", uc.UseCatalog)
	admin.Grant("sales.raw", "alice", uc.UseSchema)
	admin.Grant("sales.raw.orders", "alice", uc.Select)
	res, _ = eng.Execute(uc.Ctx{Principal: "alice", Metastore: "ms1"}, "SELECT COUNT(*) FROM sales.raw.orders")
	fmt.Println("alice rows:", res.Count)

	// Output:
	// rows: 2
	// alice: denied
	// alice rows: 2
}
