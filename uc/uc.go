// Package uc is the public embedding API of this Unity Catalog
// reproduction: a single entry point that assembles the metadata store, the
// governed object store, the Unity Catalog core service, the second-tier
// discovery services (search, lineage), the Delta Sharing server, the model
// registry, predictive optimization, and the REST front end.
//
// Quick start:
//
//	cat, err := uc.Open(uc.Config{})                  // in-memory stack
//	info, _ := cat.CreateMetastore("ms1", "main", "us-east-1", "admin", "s3://root/ms1")
//	admin := cat.Session("admin", "ms1")
//	admin.CreateCatalog("sales", "")
//	admin.CreateSchema("sales", "raw", "")
//	admin.CreateTable("sales.raw", "orders", ...)
//
// Everything the paper's Figure 3 shows is reachable from Catalog: the core
// service (Catalog.Service), search/lineage (Catalog.Search,
// Catalog.Lineage), sharing (Catalog.Sharing), the model registry
// (Catalog.Models), and an http.Handler serving the full REST API
// (Catalog.Handler).
package uc

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"unitycatalog/internal/audit"
	"unitycatalog/internal/cache"
	"unitycatalog/internal/catalog"
	"unitycatalog/internal/cloudsim"
	"unitycatalog/internal/delta"
	"unitycatalog/internal/engine"
	"unitycatalog/internal/erm"
	"unitycatalog/internal/events"
	"unitycatalog/internal/lineage"
	"unitycatalog/internal/mlregistry"
	"unitycatalog/internal/optimize"
	"unitycatalog/internal/privilege"
	"unitycatalog/internal/search"
	"unitycatalog/internal/server"
	"unitycatalog/internal/sharing"
	"unitycatalog/internal/store"
	"unitycatalog/internal/txn"
)

// Re-exported types so embedders need only this package for common work.
type (
	// Ctx is a request identity (principal, metastore, engine trust).
	Ctx = catalog.Ctx
	// Principal names a user, group, or service identity.
	Principal = privilege.Principal
	// Privilege is a grantable right (uc.Select, uc.Modify, ...).
	Privilege = privilege.Privilege
	// TableSpec describes a table's type, format, columns, and FGAC rules.
	TableSpec = catalog.TableSpec
	// ViewSpec describes a view definition and its dependencies.
	ViewSpec = catalog.ViewSpec
	// ColumnInfo is one table or view column.
	ColumnInfo = catalog.ColumnInfo
	// Entity is the generic securable record.
	Entity = erm.Entity
	// ResolveRequest/ResolveResponse are the batched query-path API.
	ResolveRequest  = catalog.ResolveRequest
	ResolveResponse = catalog.ResolveResponse
	// TempCredential is a vended storage credential.
	TempCredential = catalog.TempCredential
	// AccessLevel selects read or read-write storage access.
	AccessLevel = cloudsim.AccessLevel
)

// Common privileges, re-exported.
const (
	Select      = privilege.Select
	Modify      = privilege.Modify
	UseCatalog  = privilege.UseCatalog
	UseSchema   = privilege.UseSchema
	ReadVolume  = privilege.ReadVolume
	WriteVolume = privilege.WriteVolume
	Execute     = privilege.Execute
	Manage      = privilege.Manage
)

// Access levels, re-exported.
const (
	AccessRead      = cloudsim.AccessRead
	AccessReadWrite = cloudsim.AccessReadWrite
)

// Sentinel errors, re-exported for errors.Is.
var (
	ErrNotFound              = catalog.ErrNotFound
	ErrAlreadyExists         = catalog.ErrAlreadyExists
	ErrPermissionDenied      = catalog.ErrPermissionDenied
	ErrPathOverlap           = catalog.ErrPathOverlap
	ErrTrustedEngineRequired = catalog.ErrTrustedEngineRequired
)

// WAL fsync policy, re-exported from the store.
type SyncPolicy = store.SyncPolicy

const (
	// SyncBatch (the default) fsyncs once per group-commit batch.
	SyncBatch = store.SyncBatch
	// SyncNever leaves flushing to the OS.
	SyncNever = store.SyncNever
	// SyncAlways fsyncs after every WAL entry.
	SyncAlways = store.SyncAlways
)

// ParseSyncPolicy parses "batch", "never", or "always".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return store.ParseSyncPolicy(s) }

// Config assembles a Catalog.
type Config struct {
	// WALPath enables metadata durability via a write-ahead log file.
	WALPath string
	// WALSync selects when the WAL fsyncs (default SyncBatch: one fsync
	// amortized over each group-commit batch).
	WALSync SyncPolicy
	// DBReadLatency/DBCommitLatency inject artificial backend-database
	// latency (benchmarking).
	DBReadLatency   time.Duration
	DBCommitLatency time.Duration
	// DisableCache turns off the mutable-metadata cache.
	DisableCache bool
	// CredentialTTL bounds vended temporary credentials (default 15m).
	CredentialTTL time.Duration

	// --- telemetry (see internal/server.Config) ---

	// AccessLog emits one structured line per API request to
	// AccessLogWriter (default os.Stderr); 5xx lines include the error.
	AccessLog bool
	// AccessLogWriter receives access-log lines.
	AccessLogWriter io.Writer
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// TraceSampleEvery retains every Nth trace for /debug/traces
	// (default 64; negative disables sampling).
	TraceSampleEvery int
	// TraceSlowThreshold always retains traces at least this slow
	// (default 100ms; negative disables).
	TraceSlowThreshold time.Duration
	// Node attributes this process's trace segments in stitched
	// cross-node trace trees (empty = no node attribution).
	Node string
	// TenantTopK sizes the per-tenant usage sketches behind /debug/tenants
	// and the uc_tenant_* metric families (default 32; negative disables
	// metering).
	TenantTopK int
	// SLORouteP99 arms the flight-recorder watchdog: any route whose
	// windowed p99 exceeds this budget between polls trips an incident
	// (0 = no SLO check).
	SLORouteP99 time.Duration
	// FlightFrames/FlightTraces size the flight-recorder rings (defaults
	// 32 frames / 256 trace summaries).
	FlightFrames int
	FlightTraces int
	// FlightInterval polls the flight-recorder watchdog in the background
	// (default 0: checks run lazily on /debug/flightrecorder reads only).
	FlightInterval time.Duration
	// NaiveEncoding forces the reflection-based encoding/json response path
	// on the hot routes instead of the pooled encoders (ablation baseline).
	NaiveEncoding bool
	// ETagMaxAge bounds the lifetime of a conditional-GET validator
	// (default 30s; negative disables conditional handling).
	ETagMaxAge time.Duration

	// --- multi-table transactions (see internal/txn) ---

	// TxnLease bounds how long an in-flight multi-table commit may keep
	// publishing before the recovery sweep may take it over (default 30s).
	TxnLease time.Duration
	// TxnSweepInterval runs the transaction recovery sweep periodically
	// (default 0: startup-only recovery, no background sweeper).
	TxnSweepInterval time.Duration
}

// Catalog is the assembled Unity Catalog stack.
type Catalog struct {
	Service   *catalog.Service
	Cloud     *cloudsim.Store
	Search    *search.Service
	Lineage   *lineage.Service
	Sharing   *sharing.Server
	Models    *mlregistry.Registry
	Artifacts *mlregistry.ArtifactRepository
	Optimizer *optimize.Optimizer

	db    *store.DB
	srv   *server.Server
	coord *txn.Coordinator
}

// Open assembles a Catalog from the config.
func Open(cfg Config) (*Catalog, error) {
	db, err := store.Open(store.Options{
		WALPath:       cfg.WALPath,
		Sync:          cfg.WALSync,
		ReadLatency:   cfg.DBReadLatency,
		CommitLatency: cfg.DBCommitLatency,
	})
	if err != nil {
		return nil, err
	}
	svc, err := catalog.New(catalog.Config{
		DB:            db,
		CacheOpts:     cache.Options{Disabled: cfg.DisableCache},
		CredentialTTL: cfg.CredentialTTL,
	})
	if err != nil {
		db.Close()
		return nil, err
	}
	c := &Catalog{
		Service: svc,
		Cloud:   svc.Cloud(),
		db:      db,
	}
	c.srv = server.NewWithConfig(svc, server.Config{
		SampleEvery:     cfg.TraceSampleEvery,
		SlowThreshold:   cfg.TraceSlowThreshold,
		Node:            cfg.Node,
		TenantTopK:      cfg.TenantTopK,
		SLORouteP99:     cfg.SLORouteP99,
		FlightFrames:    cfg.FlightFrames,
		FlightTraces:    cfg.FlightTraces,
		FlightInterval:  cfg.FlightInterval,
		AccessLog:       cfg.AccessLog,
		AccessLogWriter: cfg.AccessLogWriter,
		Pprof:           cfg.Pprof,
		NaiveEncoding:   cfg.NaiveEncoding,
		ETagMaxAge:      cfg.ETagMaxAge,
	})
	c.Search = c.srv.Search
	c.Lineage = c.srv.Lineage
	c.Sharing = c.srv.Sharing
	c.Models = c.srv.Registry
	c.Artifacts = mlregistry.NewArtifactRepository(svc)
	c.Optimizer = optimize.New(svc, optimize.Options{})

	// One transaction coordinator per stack: its intent records outlive any
	// process (WAL replay restores them into the store), so recover what a
	// predecessor left behind, expose its metrics on /metrics, and keep a
	// periodic sweep running if configured.
	c.coord = txn.NewCoordinatorOptions(svc, txn.Options{Lease: cfg.TxnLease})
	c.coord.Metrics().Register(c.srv.Metrics())
	// Recovery failures are retried by the sweep (and visible in metrics
	// and intent records); an embedder still gets a catalog.
	c.coord.RecoverAll()
	c.coord.StartSweeper(cfg.TxnSweepInterval)
	return c, nil
}

// Close shuts the stack down.
func (c *Catalog) Close() error {
	c.coord.Close()
	c.srv.Close()
	c.Lineage.Close()
	c.Search.Close()
	return c.db.Close()
}

// Handler returns the full REST API (UC API, Delta Sharing protocol,
// Iceberg REST facade) as an http.Handler.
func (c *Catalog) Handler() http.Handler { return c.srv }

// TrustEngine registers a machine identity as a trusted engine for FGAC.
func (c *Catalog) TrustEngine(p Principal) { c.srv.TrustEngine(p) }

// CreateMetastore creates and attaches a metastore.
func (c *Catalog) CreateMetastore(id, name, region string, owner Principal, rootPath string) (catalog.MetastoreInfo, error) {
	return c.Service.CreateMetastore(id, name, region, owner, rootPath)
}

// Audit exposes the audit trail.
func (c *Catalog) Audit() *audit.Log { return c.Service.Audit() }

// Events exposes the metadata change-event bus.
func (c *Catalog) Events() *events.Bus { return c.Service.Bus() }

// NewEngine builds an in-process SQL engine bound to this catalog. Trusted
// engines receive and enforce FGAC rules.
func (c *Catalog) NewEngine(name string, trusted bool) *engine.Engine {
	return &engine.Engine{Name: name, Catalog: c.Service, Cloud: c.Cloud, Trusted: trusted, Lineage: c.Lineage}
}

// BootstrapDeltaTable initializes an empty Delta log at a (typically
// managed) storage path with a schema derived from the column definitions —
// the DDL step a full engine performs after CREATE TABLE. The catalog itself
// stays format-agnostic; this helper exists because the mini engine only
// handles DML.
func (c *Catalog) BootstrapDeltaTable(path string, cols []ColumnInfo) error {
	var schema delta.Schema
	for _, col := range cols {
		var t delta.ColType
		switch col.Type {
		case "BIGINT", "INT", "LONG":
			t = delta.TypeInt64
		case "DOUBLE", "FLOAT":
			t = delta.TypeFloat64
		default:
			t = delta.TypeString
		}
		schema.Fields = append(schema.Fields, delta.SchemaField{Name: col.Name, Type: t, Nullable: col.Nullable || true})
	}
	_, err := delta.Create(delta.ServiceBlobs{Store: c.Cloud}, path, "", schema, nil)
	return err
}

// NewTransactionCoordinator returns the stack's coordinator for multi-table,
// multi-statement transactions on catalog-owned Delta tables (paper §6.3).
// The coordinator is shared: it was created at Open, already recovered any
// transactions a crashed predecessor left behind, and exports its metrics
// under uc_txn_* on /metrics.
func (c *Catalog) NewTransactionCoordinator() *txn.Coordinator {
	return c.coord
}

// Session binds a principal and metastore for fluent catalog operations.
func (c *Catalog) Session(principal Principal, metastore string) *Session {
	return &Session{c: c, ctx: Ctx{Principal: principal, Metastore: metastore, TrustedEngine: true}}
}

// Session is a principal-scoped convenience facade over the core service.
type Session struct {
	c   *Catalog
	ctx Ctx
}

// Ctx returns the session's request identity.
func (s *Session) Ctx() Ctx { return s.ctx }

// CreateCatalog creates a catalog.
func (s *Session) CreateCatalog(name, comment string) (*Entity, error) {
	return s.c.Service.CreateCatalog(s.ctx, name, comment)
}

// CreateSchema creates a schema.
func (s *Session) CreateSchema(catalogName, name, comment string) (*Entity, error) {
	return s.c.Service.CreateSchema(s.ctx, catalogName, name, comment)
}

// CreateTable creates a table ("" storagePath = managed storage).
func (s *Session) CreateTable(schemaFull, name string, spec TableSpec, storagePath string) (*Entity, error) {
	return s.c.Service.CreateTable(s.ctx, schemaFull, name, spec, storagePath)
}

// CreateView creates a view.
func (s *Session) CreateView(schemaFull, name string, spec ViewSpec) (*Entity, error) {
	return s.c.Service.CreateView(s.ctx, schemaFull, name, spec)
}

// CreateVolume creates a volume.
func (s *Session) CreateVolume(schemaFull, name, storagePath string) (*Entity, error) {
	return s.c.Service.CreateVolume(s.ctx, schemaFull, name, storagePath)
}

// Get fetches an asset by full name with authorization.
func (s *Session) Get(full string) (*Entity, error) { return s.c.Service.GetAsset(s.ctx, full) }

// List lists visible children of parent, optionally filtered by type.
func (s *Session) List(parent string, t erm.SecurableType) ([]*Entity, error) {
	return s.c.Service.ListAssets(s.ctx, parent, t)
}

// Delete soft-deletes an asset (force cascades).
func (s *Session) Delete(full string, force bool) error {
	return s.c.Service.DeleteAsset(s.ctx, full, force)
}

// Grant grants a privilege on a securable.
func (s *Session) Grant(full string, p Principal, priv Privilege) error {
	return s.c.Service.Grant(s.ctx, full, p, priv)
}

// Revoke revokes a privilege.
func (s *Session) Revoke(full string, p Principal, priv Privilege) error {
	return s.c.Service.Revoke(s.ctx, full, p, priv)
}

// SetTag sets an entity tag (column == "") or column tag.
func (s *Session) SetTag(full, column, key, value string) error {
	return s.c.Service.SetTag(s.ctx, full, column, key, value)
}

// Resolve performs the batched query-path metadata resolution.
func (s *Session) Resolve(req ResolveRequest) (*ResolveResponse, error) {
	return s.c.Service.Resolve(s.ctx, req)
}

// Credential vends a temporary storage credential for an asset.
func (s *Session) Credential(full string, level AccessLevel) (TempCredential, error) {
	return s.c.Service.TempCredentialForAsset(s.ctx, full, level)
}

// CredentialForPath vends a credential by raw storage path.
func (s *Session) CredentialForPath(path string, level AccessLevel) (TempCredential, error) {
	return s.c.Service.TempCredentialForPath(s.ctx, path, level)
}

// CloneTable shallow-clones a table (zero copy; paper §4.3.2).
func (s *Session) CloneTable(srcFull, dstSchemaFull, dstName string) (*Entity, error) {
	return s.c.Service.CloneTable(s.ctx, srcFull, dstSchemaFull, dstName)
}

// Rename renames a leaf asset (or empty container).
func (s *Session) Rename(full, newName string) (*Entity, error) {
	return s.c.Service.RenameAsset(s.ctx, full, newName)
}

// WriteVolumeFile uploads a file into a volume.
func (s *Session) WriteVolumeFile(volumeFull, name string, data []byte) error {
	return s.c.Service.WriteVolumeFile(s.ctx, volumeFull, name, data)
}

// ReadVolumeFile downloads a file from a volume.
func (s *Session) ReadVolumeFile(volumeFull, name string) ([]byte, error) {
	return s.c.Service.ReadVolumeFile(s.ctx, volumeFull, name)
}

// ListVolumeFiles lists a volume's files.
func (s *Session) ListVolumeFiles(volumeFull string) ([]catalog.VolumeFileInfo, error) {
	return s.c.Service.ListVolumeFiles(s.ctx, volumeFull)
}

// String describes the session.
func (s *Session) String() string {
	return fmt.Sprintf("uc.Session(%s@%s)", s.ctx.Principal, s.ctx.Metastore)
}
