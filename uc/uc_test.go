package uc_test

import (
	"errors"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"unitycatalog/internal/erm"
	"unitycatalog/uc"
)

func open(t *testing.T, cfg uc.Config) *uc.Catalog {
	t.Helper()
	cat, err := uc.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	if _, err := cat.CreateMetastore("ms1", "main", "r", "admin", "s3://root/ms1"); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestFacadeEndToEnd(t *testing.T) {
	cat := open(t, uc.Config{})
	admin := cat.Session("admin", "ms1")
	if _, err := admin.CreateCatalog("c", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.CreateSchema("c", "s", ""); err != nil {
		t.Fatal(err)
	}
	cols := []uc.ColumnInfo{{Name: "id", Type: "BIGINT"}, {Name: "v", Type: "STRING"}}
	tbl, err := admin.CreateTable("c.s", "t", uc.TableSpec{Columns: cols}, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.BootstrapDeltaTable(tbl.StoragePath, cols); err != nil {
		t.Fatal(err)
	}
	eng := cat.NewEngine("e", true)
	ctx := uc.Ctx{Principal: "admin", Metastore: "ms1"}
	if _, err := eng.Execute(ctx, "INSERT INTO c.s.t VALUES (1, 'x'), (2, 'y')"); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Execute(ctx, "SELECT id FROM c.s.t WHERE id >= 2")
	if err != nil || res.RowsReturned != 1 {
		t.Fatalf("query = %+v, %v", res, err)
	}
	// Grants + sentinel errors across the facade.
	if err := admin.Grant("c.s.t", "alice", uc.Select); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Session("mallory", "ms1").Get("c.s.t"); !errors.Is(err, uc.ErrPermissionDenied) {
		t.Fatalf("mallory: %v", err)
	}
	// List via session.
	tables, err := admin.List("c.s", erm.TypeTable)
	if err != nil || len(tables) != 1 {
		t.Fatalf("list = %v, %v", tables, err)
	}
	// Credential via session; the token works on the data plane.
	cred, err := admin.Credential("c.s.t", uc.AccessRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Cloud.List(cred.Credential.Token, tbl.StoragePath); err != nil {
		t.Fatalf("vended token rejected: %v", err)
	}
}

func TestFacadeHTTPHandler(t *testing.T) {
	cat := open(t, uc.Config{})
	hs := httptest.NewServer(cat.Handler())
	defer hs.Close()
	resp, err := hs.Client().Get(hs.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz = %v, %v", resp.StatusCode, err)
	}
	resp.Body.Close()
}

func TestFacadeDurability(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "uc.wal")
	cat, err := uc.Open(uc.Config{WALPath: wal})
	if err != nil {
		t.Fatal(err)
	}
	cat.CreateMetastore("ms1", "main", "r", "admin", "s3://root/ms1")
	admin := cat.Session("admin", "ms1")
	admin.CreateCatalog("persisted", "")
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}

	cat2, err := uc.Open(uc.Config{WALPath: wal})
	if err != nil {
		t.Fatal(err)
	}
	defer cat2.Close()
	if _, err := cat2.Service.OpenMetastore("ms1"); err != nil {
		t.Fatal(err)
	}
	if _, err := cat2.Session("admin", "ms1").Get("persisted"); err != nil {
		t.Fatalf("metadata lost across restart: %v", err)
	}
}

func TestFacadeWALSyncPolicies(t *testing.T) {
	for _, name := range []string{"batch", "never", "always"} {
		policy, err := uc.ParseSyncPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		wal := filepath.Join(t.TempDir(), "uc.wal")
		cat, err := uc.Open(uc.Config{WALPath: wal, WALSync: policy})
		if err != nil {
			t.Fatal(err)
		}
		cat.CreateMetastore("ms1", "main", "r", "admin", "s3://root/ms1")
		if err := cat.Close(); err != nil {
			t.Fatalf("policy %s: %v", name, err)
		}
		cat2, err := uc.Open(uc.Config{WALPath: wal})
		if err != nil {
			t.Fatalf("policy %s: reopen: %v", name, err)
		}
		if _, err := cat2.Service.OpenMetastore("ms1"); err != nil {
			t.Fatalf("policy %s: metadata lost: %v", name, err)
		}
		cat2.Close()
	}
	if _, err := uc.ParseSyncPolicy("fsync-maybe"); err == nil {
		t.Fatal("ParseSyncPolicy should reject unknown policies")
	}
}

func TestFacadeOptimizerAndTxn(t *testing.T) {
	cat := open(t, uc.Config{})
	if cat.Optimizer == nil || cat.NewTransactionCoordinator() == nil {
		t.Fatal("facade missing optimizer or txn coordinator")
	}
	if cat.Models == nil || cat.Artifacts == nil || cat.Sharing == nil {
		t.Fatal("facade missing registry subsystems")
	}
}
